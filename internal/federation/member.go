package federation

// The member-side HTTP surface: the full /v1 service API of the
// member's shard.Router, plus the takeover endpoint the gateway drives.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"dollymp/internal/service"
	"dollymp/internal/shard"
)

// AdoptRequest asks a member to absorb a dead sibling's journal
// directory. POST /v1/federation/adopt.
type AdoptRequest struct {
	Dir string `json:"dir"`
}

// NewMemberHandler mounts the standard service routes on the member's
// router plus POST /v1/federation/adopt, the journal-takeover endpoint.
// Adoption of a directory whose segments are still flock-leased by a
// live writer is refused with 409 conflict — the caller's death verdict
// is checked against the kernel's, so a merely-partitioned member is
// never cannibalized.
func NewMemberHandler(r *shard.Router) http.Handler {
	return service.NewHandler(r, service.Route{
		Method: "POST", Pattern: "/v1/federation/adopt",
		Handler: func(w http.ResponseWriter, req *http.Request) {
			var ar AdoptRequest
			dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&ar); err != nil || ar.Dir == "" {
				service.WriteError(w, http.StatusBadRequest, service.CodeInvalidArgument,
					fmt.Sprintf("adopt request needs {\"dir\": ...}: %v", err))
				return
			}
			rep, err := r.Adopt(ar.Dir)
			switch {
			case err == nil:
				w.Header().Set("Content-Type", "application/json")
				_ = json.NewEncoder(w).Encode(rep)
			case errors.Is(err, shard.ErrLeased):
				service.WriteError(w, http.StatusConflict, service.CodeConflict, err.Error())
			case errors.Is(err, shard.ErrStopped):
				service.WriteError(w, http.StatusServiceUnavailable, service.CodeDraining, err.Error())
			case errors.Is(err, shard.ErrQueueFull):
				service.WriteError(w, http.StatusTooManyRequests, service.CodeQueueFull, err.Error())
			default:
				service.WriteError(w, http.StatusInternalServerError, service.CodeInternal, err.Error())
			}
		},
	})
}

// NewMemberRouter builds the shard.Router for one manifest member: its
// local shards are the member's residue classes of the manifest's
// global shard space, journaling into the member's directory. The
// caller supplies the rest of the shard configuration (fleet, policy,
// queue bounds) and owns Start/Stop.
func NewMemberRouter(man Manifest, name string, base shard.Config) (*shard.Router, Member, error) {
	if err := man.Validate(false); err != nil {
		return nil, Member{}, err
	}
	mb, err := man.MemberByName(name)
	if err != nil {
		return nil, Member{}, err
	}
	base.Shards = len(mb.Residues)
	base.TotalShards = man.Shards
	base.Residues = mb.Residues
	base.JournalDir = mb.JournalDir
	r, err := shard.New(base)
	if err != nil {
		return nil, Member{}, fmt.Errorf("federation: member %s: %w", name, err)
	}
	return r, mb, nil
}
