package workload

import (
	"testing"

	"dollymp/internal/resources"
)

func benchJob() *JobState {
	phases := make([]Phase, 6)
	for k := range phases {
		phases[k] = Phase{
			Name: "p", Tasks: 50, Demand: resources.Cores(1, 2),
			MeanDuration: 10, SDDuration: 5,
		}
	}
	j := Chain(1, "b", "bench", 0, phases)
	return NewJobState(j)
}

// BenchmarkUpdatedVolume measures Eq. (16), recomputed per job on every
// arrival under DollyMP.
func BenchmarkUpdatedVolume(b *testing.B) {
	js := benchJob()
	total := resources.Cores(328, 648)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v := js.UpdatedVolume(total, 1.5); v <= 0 {
			b.Fatal("zero volume")
		}
	}
}

// BenchmarkUpdatedProcessingTime measures Eq. (17), the remaining
// critical path.
func BenchmarkUpdatedProcessingTime(b *testing.B) {
	js := benchJob()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e := js.UpdatedProcessingTime(1.5); e <= 0 {
			b.Fatal("zero time")
		}
	}
}

// BenchmarkMarkTransitions measures task state bookkeeping.
func BenchmarkMarkTransitions(b *testing.B) {
	js := benchJob()
	for i := 0; i < b.N; i++ {
		l := i % 50
		js.MarkRunning(0, l)
		js.MarkPending(0, l)
	}
}
