package workload

import (
	"testing"
	"testing/quick"

	"dollymp/internal/resources"
)

func widePhase(tasks int) *JobState {
	j := &Job{ID: 1, Name: "w", App: "t", Phases: []Phase{{
		Name: "p", Tasks: tasks, Demand: resources.Cores(1, 1), MeanDuration: 5,
	}}}
	return NewJobState(j)
}

func TestCountsTrackTransitions(t *testing.T) {
	s := widePhase(5)
	if s.PendingCount(0) != 5 || s.RunningCount(0) != 0 {
		t.Fatalf("initial counts: %d/%d", s.PendingCount(0), s.RunningCount(0))
	}
	s.MarkRunning(0, 2)
	s.MarkRunning(0, 4)
	if s.PendingCount(0) != 3 || s.RunningCount(0) != 2 {
		t.Fatalf("after running: %d/%d", s.PendingCount(0), s.RunningCount(0))
	}
	if got := s.RunningTasks(0); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("running list: %v", got)
	}
	if err := s.MarkDone(0, 2); err != nil {
		t.Fatal(err)
	}
	if s.RunningCount(0) != 1 || s.PendingCount(0) != 3 {
		t.Fatalf("after done-from-running: %d/%d", s.RunningCount(0), s.PendingCount(0))
	}
	// Done directly from pending also decrements pending.
	if err := s.MarkDone(0, 0); err != nil {
		t.Fatal(err)
	}
	if s.PendingCount(0) != 2 {
		t.Fatalf("after done-from-pending: %d", s.PendingCount(0))
	}
}

func TestMarkRunningIdempotent(t *testing.T) {
	s := widePhase(3)
	s.MarkRunning(0, 1)
	s.MarkRunning(0, 1) // second call must not double-count
	if s.PendingCount(0) != 2 || s.RunningCount(0) != 1 {
		t.Fatalf("counts: %d/%d", s.PendingCount(0), s.RunningCount(0))
	}
}

func TestNextPending(t *testing.T) {
	s := widePhase(5)
	s.MarkRunning(0, 0)
	s.MarkRunning(0, 2)
	if got, ok := s.NextPending(0, 0); !ok || got != 1 {
		t.Fatalf("NextPending(0): %d %v", got, ok)
	}
	if got, ok := s.NextPending(0, 2); !ok || got != 3 {
		t.Fatalf("NextPending(2): %d %v", got, ok)
	}
	if got, ok := s.NextPending(0, 4); !ok || got != 4 {
		t.Fatalf("NextPending(4): %d %v", got, ok)
	}
	if _, ok := s.NextPending(0, 5); ok {
		t.Fatal("past the end should be false")
	}
	// Exhaust everything.
	for l := 0; l < 5; l++ {
		if err := s.MarkDone(0, l); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.NextPending(0, 0); ok {
		t.Fatal("no pending should remain")
	}
}

func TestMarkPendingRevertsRunning(t *testing.T) {
	s := widePhase(4)
	s.MarkRunning(0, 1)
	s.MarkRunning(0, 3)
	s.MarkPending(0, 3)
	if s.PendingCount(0) != 3 || s.RunningCount(0) != 1 {
		t.Fatalf("counts: %d/%d", s.PendingCount(0), s.RunningCount(0))
	}
	if got := s.RunningTasks(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("running list: %v", got)
	}
	// No-op on pending or done tasks.
	s.MarkPending(0, 0)
	if s.PendingCount(0) != 3 {
		t.Fatal("MarkPending on pending mutated counts")
	}
	if err := s.MarkDone(0, 1); err != nil {
		t.Fatal(err)
	}
	s.MarkPending(0, 1)
	if s.Task(0, 1) != TaskDone {
		t.Fatal("MarkPending resurrected a done task")
	}
}

func TestMarkPendingResetsScanHint(t *testing.T) {
	s := widePhase(4)
	// Drive the hint forward.
	s.MarkRunning(0, 0)
	s.MarkRunning(0, 1)
	if got, _ := s.NextPending(0, 0); got != 2 {
		t.Fatalf("hint: %d", got)
	}
	// Revert task 0: it must be visible again.
	s.MarkPending(0, 0)
	if got, ok := s.NextPending(0, 0); !ok || got != 0 {
		t.Fatalf("after revert: %d %v", got, ok)
	}
}

// Property: counts always agree with a full scan, through random
// transition sequences.
func TestCountsMatchScanProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := widePhase(8)
		for _, op := range ops {
			l := int(op) % 8
			switch (op / 8) % 3 {
			case 0:
				s.MarkRunning(0, l)
			case 1:
				s.MarkPending(0, l)
			case 2:
				if s.Task(0, l) != TaskDone {
					if err := s.MarkDone(0, l); err != nil {
						return false
					}
				}
			}
			pend, run := 0, 0
			for i := 0; i < 8; i++ {
				switch s.Task(0, i) {
				case TaskPending:
					pend++
				case TaskRunning:
					run++
				}
			}
			if pend != s.PendingCount(0) || run != s.RunningCount(0) {
				return false
			}
			if len(s.RunningTasks(0)) != run {
				return false
			}
			// NextPending from 0 returns the first scanned pending.
			want, found := -1, false
			for i := 0; i < 8; i++ {
				if s.Task(0, i) == TaskPending {
					want, found = i, true
					break
				}
			}
			got, ok := s.NextPending(0, 0)
			if ok != found || (found && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
