package workload

import (
	"fmt"
	"sort"

	"dollymp/internal/resources"
)

// TaskState tracks the lifecycle of one logical task (which may have
// several running copies under cloning).
type TaskState int

// Task lifecycle states.
const (
	TaskPending TaskState = iota // waiting for parents or resources
	TaskRunning                  // at least one copy placed
	TaskDone                     // first copy finished
)

// JobState is the mutable scheduling view of one job: which tasks are
// pending/running/done, and the updated volume and processing time of
// Eqs. (16)–(17). It is owned by the simulator's goroutine.
type JobState struct {
	Job *Job

	// task[k][l] is the state of task l in phase k.
	task [][]TaskState
	// doneInPhase[k] counts finished tasks in phase k.
	doneInPhase []int
	// phaseDone[k] reports whether all tasks in phase k completed.
	phaseDone []bool
	// runningList[k] holds the indices of running tasks in phase k in
	// ascending order, so schedulers iterate running tasks in O(running)
	// instead of O(phase size).
	runningList [][]int
	// pendingCount[k] counts pending tasks in phase k; firstPending[k]
	// is a monotone scan hint for NextPending.
	pendingCount []int
	firstPending []int

	// Finish is f_j in slots; -1 while the job is running.
	Finish int64
	// FirstStart is the slot at which the first task copy was placed;
	// -1 before then. RunningTime (Fig. 4b/5) = Finish − FirstStart.
	FirstStart int64

	// Usage accumulates the per-job resource-time product across all
	// copies (§6.3.1's resource-usage metric).
	Usage resources.Usage

	// CopiesLaunched counts all copies ever launched, clones included;
	// TasksCloned counts tasks that received at least one clone.
	CopiesLaunched int
	TasksCloned    int

	// topo caches Job.TopoOrder() — the DAG never changes after
	// validation, but Eq. (17) walks it at every priority recompute.
	// finish is the reusable critical-path scratch of the same walk.
	topo     []PhaseID
	topoBad  bool
	topoDone bool
	finish   []float64
}

// NewJobState initializes tracking for a validated job.
func NewJobState(j *Job) *JobState {
	s := &JobState{
		Job:          j,
		task:         make([][]TaskState, len(j.Phases)),
		doneInPhase:  make([]int, len(j.Phases)),
		phaseDone:    make([]bool, len(j.Phases)),
		runningList:  make([][]int, len(j.Phases)),
		pendingCount: make([]int, len(j.Phases)),
		firstPending: make([]int, len(j.Phases)),
		Finish:       -1,
		FirstStart:   -1,
	}
	for k := range j.Phases {
		s.task[k] = make([]TaskState, j.Phases[k].Tasks)
		s.pendingCount[k] = j.Phases[k].Tasks
	}
	return s
}

// Task returns the state of task (k, l).
func (s *JobState) Task(k PhaseID, l int) TaskState { return s.task[k][l] }

// MarkRunning records that task (k, l) has at least one placed copy.
func (s *JobState) MarkRunning(k PhaseID, l int) {
	if s.task[k][l] == TaskPending {
		s.task[k][l] = TaskRunning
		s.pendingCount[k]--
		s.runningList[k] = insertSorted(s.runningList[k], l)
	}
}

// MarkDone records completion of task (k, l). It returns an error on a
// double completion. Phase and job completion flags update automatically.
func (s *JobState) MarkDone(k PhaseID, l int) error {
	switch s.task[k][l] {
	case TaskDone:
		return fmt.Errorf("workload: task %v already done", TaskRef{s.Job.ID, k, l})
	case TaskPending:
		s.pendingCount[k]--
	case TaskRunning:
		s.runningList[k] = removeSorted(s.runningList[k], l)
	}
	s.task[k][l] = TaskDone
	s.doneInPhase[k]++
	if s.doneInPhase[k] == s.Job.Phases[k].Tasks {
		s.phaseDone[k] = true
	}
	return nil
}

// MarkPending reverts a running task to pending — the transition a
// server failure forces when every copy of a task is lost. It is a no-op
// for pending or done tasks.
func (s *JobState) MarkPending(k PhaseID, l int) {
	if s.task[k][l] != TaskRunning {
		return
	}
	s.task[k][l] = TaskPending
	s.runningList[k] = removeSorted(s.runningList[k], l)
	s.pendingCount[k]++
	if l < s.firstPending[k] {
		s.firstPending[k] = l
	}
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// PhaseDone reports whether all tasks of phase k finished.
func (s *JobState) PhaseDone(k PhaseID) bool { return s.phaseDone[k] }

// PhaseReady reports whether phase k's parents have all completed, i.e.
// constraint (7) allows its tasks to start.
func (s *JobState) PhaseReady(k PhaseID) bool {
	for _, par := range s.Job.Phases[k].Parents {
		if !s.phaseDone[par] {
			return false
		}
	}
	return true
}

// Done reports whether every phase completed.
func (s *JobState) Done() bool {
	for _, d := range s.phaseDone {
		if !d {
			return false
		}
	}
	return true
}

// RemainingTasks returns the number of not-yet-finished tasks in phase k
// (the n_j^k(t) of Eq. 16).
func (s *JobState) RemainingTasks(k PhaseID) int {
	return s.Job.Phases[k].Tasks - s.doneInPhase[k]
}

// PendingTasks returns the indices of tasks in phase k that are still
// pending (no copy placed).
func (s *JobState) PendingTasks(k PhaseID) []int {
	if s.pendingCount[k] == 0 {
		return nil
	}
	out := make([]int, 0, s.pendingCount[k])
	for l, st := range s.task[k] {
		if st == TaskPending {
			out = append(out, l)
		}
	}
	return out
}

// PendingCount returns the number of pending tasks in phase k in O(1).
func (s *JobState) PendingCount(k PhaseID) int { return s.pendingCount[k] }

// NextPending returns the first pending task index ≥ from in phase k, or
// false if none. Amortized O(1) when scanned monotonically.
func (s *JobState) NextPending(k PhaseID, from int) (int, bool) {
	if s.pendingCount[k] == 0 {
		return 0, false
	}
	if from < s.firstPending[k] {
		from = s.firstPending[k]
	}
	tasks := s.task[k]
	for l := from; l < len(tasks); l++ {
		if tasks[l] == TaskPending {
			if from == s.firstPending[k] {
				s.firstPending[k] = l
			}
			return l, true
		}
	}
	return 0, false
}

// RunningTasks returns the indices of tasks in phase k that are running,
// in ascending order, in O(running).
func (s *JobState) RunningTasks(k PhaseID) []int {
	if len(s.runningList[k]) == 0 {
		return nil
	}
	out := make([]int, len(s.runningList[k]))
	copy(out, s.runningList[k])
	return out
}

// RunningTasksView is RunningTasks without the copy: it shares the
// JobState's internal storage. Callers must not modify the slice and
// must not hold it across a Mark* mutation — it is for read-only scans
// within one scheduling decision.
func (s *JobState) RunningTasksView(k PhaseID) []int { return s.runningList[k] }

// RunningCount returns the number of running tasks in phase k in O(1).
func (s *JobState) RunningCount(k PhaseID) int { return len(s.runningList[k]) }

// ReadyPhases returns the phases whose parents are complete but which are
// not themselves complete, in index order — the phases Algorithm 2 may
// draw tasks from.
func (s *JobState) ReadyPhases() []PhaseID {
	return s.AppendReadyPhases(nil)
}

// AppendReadyPhases appends the ready phases to dst and returns it —
// ReadyPhases for callers that reuse a buffer across decisions.
func (s *JobState) AppendReadyPhases(dst []PhaseID) []PhaseID {
	for k := range s.Job.Phases {
		if !s.phaseDone[k] && s.PhaseReady(PhaseID(k)) {
			dst = append(dst, PhaseID(k))
		}
	}
	return dst
}

// UpdatedVolume implements Eq. (16): the effective volume restricted to
// unfinished work,
//
//	v_j(t) = Σ_{k ∈ Φ_j(t)} n_j^k(t) · e_j^k · d_j^k.
func (s *JobState) UpdatedVolume(total resources.Vector, r float64) float64 {
	return s.UpdatedVolumeWith(total, func(k PhaseID) float64 {
		return s.Job.Phases[k].EffectiveDuration(r)
	})
}

// UpdatedVolumeWith is UpdatedVolume with a caller-supplied effective
// duration per phase — how estimated (rather than declared) statistics
// enter Eq. (16).
func (s *JobState) UpdatedVolumeWith(total resources.Vector, eff func(PhaseID) float64) float64 {
	v := 0.0
	for k := range s.Job.Phases {
		rem := s.RemainingTasks(PhaseID(k))
		if rem == 0 {
			continue
		}
		p := &s.Job.Phases[k]
		v += float64(rem) * eff(PhaseID(k)) * p.DominantShare(total)
	}
	return v
}

// UpdatedProcessingTime implements Eq. (17): the critical path restricted
// to unfinished phases.
func (s *JobState) UpdatedProcessingTime(r float64) float64 {
	return s.UpdatedProcessingTimeWith(func(k PhaseID) float64 {
		return s.Job.Phases[k].EffectiveDuration(r)
	})
}

// UpdatedProcessingTimeWith is UpdatedProcessingTime with a caller-
// supplied effective duration per phase.
func (s *JobState) UpdatedProcessingTimeWith(eff func(PhaseID) float64) float64 {
	if len(s.Job.Phases) == 1 {
		// Single-phase jobs (the common trace shape) have a trivial
		// critical path: no ordering, no finish vector.
		if s.phaseDone[0] {
			return 0
		}
		return eff(0)
	}
	order, ok := s.topoOrder()
	if !ok {
		return 0
	}
	if cap(s.finish) < len(s.Job.Phases) {
		s.finish = make([]float64, len(s.Job.Phases))
	}
	finish := s.finish[:len(s.Job.Phases)]
	longest := 0.0
	for _, k := range order {
		if s.phaseDone[k] {
			finish[k] = 0 // finished phases contribute no remaining length
			continue
		}
		p := &s.Job.Phases[k]
		start := 0.0
		for _, par := range p.Parents {
			if finish[par] > start {
				start = finish[par]
			}
		}
		finish[k] = start + eff(PhaseID(k))
		if finish[k] > longest {
			longest = finish[k]
		}
	}
	return longest
}

// topoOrder returns the cached topological order of the job's phases,
// or ok=false for an invalid (cyclic) DAG.
func (s *JobState) topoOrder() ([]PhaseID, bool) {
	if !s.topoDone {
		order, err := s.Job.TopoOrder()
		s.topo, s.topoBad, s.topoDone = order, err != nil, true
	}
	return s.topo, !s.topoBad
}

// Flowtime returns f_j − a_j, or -1 if the job has not finished.
func (s *JobState) Flowtime() int64 {
	if s.Finish < 0 {
		return -1
	}
	return s.Finish - s.Job.Arrival
}

// RunningTime returns f_j minus the first task start, or -1 if the job
// has not finished. This is the "job execution time" of §6.2.
func (s *JobState) RunningTime() int64 {
	if s.Finish < 0 || s.FirstStart < 0 {
		return -1
	}
	return s.Finish - s.FirstStart
}
