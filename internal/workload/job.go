// Package workload models the jobs DollyMP schedules: DAGs of phases,
// each phase a set of parallel tasks with a multi-resource demand and a
// stochastic duration (§3). It also implements the derived quantities the
// scheduler consumes — dominant share, effective processing time, critical
// path, effective volume (Eqs. 9, 14–17) — and their online updates as
// tasks finish.
package workload

import (
	"fmt"

	"dollymp/internal/resources"
)

// JobID identifies a job.
type JobID int

// PhaseID identifies a phase within a job (index into Job.Phases).
type PhaseID int

// TaskRef names one task: job, phase, and index within the phase.
type TaskRef struct {
	Job   JobID
	Phase PhaseID
	Index int
}

// String formats the reference as j/k/l, the paper's (j, k, l) indexing.
func (r TaskRef) String() string {
	return fmt.Sprintf("j%d/p%d/t%d", r.Job, r.Phase, r.Index)
}

// Phase is one stage of a job: n parallel tasks with identical demand and
// a common duration distribution, matching the paper's observation that
// tasks within a phase have similar resource and execution properties.
type Phase struct {
	// Name is a human label ("map", "reduce", "iter-3", ...).
	Name string
	// Tasks is n_j^k, the number of parallel tasks.
	Tasks int
	// Demand is the per-task resource demand (c_j^k, m_j^k).
	Demand resources.Vector
	// MeanDuration is θ_j^k in slots; SDDuration is σ_j^k.
	MeanDuration float64
	SDDuration   float64
	// Parents lists the upstream phases P(φ_j^k); every parent must
	// complete before any task of this phase starts.
	Parents []PhaseID
}

// Job is a DAG of phases, submitted at Arrival.
type Job struct {
	ID      JobID
	Name    string
	App     string // application label ("wordcount", "pagerank", ...)
	Arrival int64  // a_j, in slots
	// Tenant is an optional submitter label ("team-a") used by edge
	// admission for per-tenant fairness and by GET /v1/jobs?tenant=
	// filtering. The scheduler itself ignores it. omitempty keeps
	// tenant-less traces byte-identical to their pre-tenant encoding.
	Tenant string `json:",omitempty"`
	Phases []Phase
}

// maxTenantLen bounds the tenant label; it is an identifier, not a
// payload, and it becomes a map key in admission policies.
const maxTenantLen = 64

// Validate checks structural soundness: at least one phase, positive task
// counts and durations, valid demands, parent references in range, and
// acyclicity.
func (j *Job) Validate() error {
	if len(j.Phases) == 0 {
		return fmt.Errorf("workload: job %d has no phases", j.ID)
	}
	if len(j.Tenant) > maxTenantLen {
		return fmt.Errorf("workload: job %d tenant label exceeds %d bytes", j.ID, maxTenantLen)
	}
	for k, p := range j.Phases {
		if p.Tasks <= 0 {
			return fmt.Errorf("workload: job %d phase %d has %d tasks", j.ID, k, p.Tasks)
		}
		if !(p.MeanDuration > 0) {
			return fmt.Errorf("workload: job %d phase %d has mean duration %v", j.ID, k, p.MeanDuration)
		}
		if p.SDDuration < 0 {
			return fmt.Errorf("workload: job %d phase %d has negative sd", j.ID, k)
		}
		if !p.Demand.IsValid() || p.Demand.IsZero() {
			return fmt.Errorf("workload: job %d phase %d has invalid demand %v", j.ID, k, p.Demand)
		}
		for _, par := range p.Parents {
			if int(par) < 0 || int(par) >= len(j.Phases) {
				return fmt.Errorf("workload: job %d phase %d has out-of-range parent %d", j.ID, k, par)
			}
			if int(par) == k {
				return fmt.Errorf("workload: job %d phase %d is its own parent", j.ID, k)
			}
		}
	}
	if _, err := j.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the phases in a topological order, or an error if the
// DAG has a cycle.
func (j *Job) TopoOrder() ([]PhaseID, error) {
	n := len(j.Phases)
	indeg := make([]int, n)
	children := make([][]PhaseID, n)
	for k, p := range j.Phases {
		for _, par := range p.Parents {
			indeg[k]++
			children[par] = append(children[par], PhaseID(k))
		}
	}
	queue := make([]PhaseID, 0, n)
	for k := 0; k < n; k++ {
		if indeg[k] == 0 {
			queue = append(queue, PhaseID(k))
		}
	}
	order := make([]PhaseID, 0, n)
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		order = append(order, k)
		for _, ch := range children[k] {
			indeg[ch]--
			if indeg[ch] == 0 {
				queue = append(queue, ch)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("workload: job %d DAG has a cycle", j.ID)
	}
	return order, nil
}

// EffectiveDuration returns e_j^k = θ_j^k + r·σ_j^k, the paper's
// variance-penalized processing time (§5); r defaults to 1.5 in the
// evaluation.
func (p *Phase) EffectiveDuration(r float64) float64 {
	return p.MeanDuration + r*p.SDDuration
}

// DominantShare returns d_j^k per Eq. (15).
func (p *Phase) DominantShare(total resources.Vector) float64 {
	return p.Demand.DominantShare(total)
}

// TotalTasks returns the job's task count across phases.
func (j *Job) TotalTasks() int {
	n := 0
	for _, p := range j.Phases {
		n += p.Tasks
	}
	return n
}

// EffectiveVolume implements Eq. (14):
//
//	v_j = Σ_k n_j^k · e_j^k · d_j^k
//
// over all phases, where e uses the variance factor r and d is the
// dominant share against the given total capacity.
func (j *Job) EffectiveVolume(total resources.Vector, r float64) float64 {
	v := 0.0
	for k := range j.Phases {
		p := &j.Phases[k]
		v += float64(p.Tasks) * p.EffectiveDuration(r) * p.DominantShare(total)
	}
	return v
}

// CriticalPathLength implements the e_j of Eq. (14): the longest chain of
// effective durations through the DAG.
func (j *Job) CriticalPathLength(r float64) float64 {
	order, err := j.TopoOrder()
	if err != nil {
		return 0
	}
	finish := make([]float64, len(j.Phases))
	longest := 0.0
	for _, k := range order {
		p := &j.Phases[k]
		start := 0.0
		for _, par := range p.Parents {
			if finish[par] > start {
				start = finish[par]
			}
		}
		finish[k] = start + p.EffectiveDuration(r)
		if finish[k] > longest {
			longest = finish[k]
		}
	}
	return longest
}

// Chain builds a purely sequential job: phase i+1 depends on phase i.
// Convenient for MapReduce-style jobs and tests.
func Chain(id JobID, name, app string, arrival int64, phases []Phase) *Job {
	for i := range phases {
		if i > 0 {
			phases[i].Parents = []PhaseID{PhaseID(i - 1)}
		} else {
			phases[i].Parents = nil
		}
	}
	return &Job{ID: id, Name: name, App: app, Arrival: arrival, Phases: phases}
}

// InputRack returns the rack holding a root-phase task's input data —
// the HDFS-block placement the paper's data-locality preferences refer
// to. It is a deterministic hash of the task reference so every
// component (engine cost model, AM binding) agrees on it. racks must be
// positive.
func InputRack(ref TaskRef, racks int) int {
	if racks <= 0 {
		panic("workload: InputRack needs a positive rack count")
	}
	h := uint64(ref.Job)*0x9e3779b97f4a7c15 ^ uint64(ref.Phase)*0xd1342543de82ef95 ^ uint64(ref.Index)*0xbf58476d1ce4e5b9
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(racks))
}

// SingleTask builds a one-phase one-task job, the shape §4.1's analysis
// and the motivating example of §2 use.
func SingleTask(id JobID, arrival int64, demand resources.Vector, mean, sd float64) *Job {
	return &Job{
		ID:      id,
		Name:    fmt.Sprintf("job-%d", id),
		Arrival: arrival,
		Phases: []Phase{{
			Name:         "task",
			Tasks:        1,
			Demand:       demand,
			MeanDuration: mean,
			SDDuration:   sd,
		}},
	}
}
