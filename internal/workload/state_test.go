package workload

import (
	"math"
	"testing"

	"dollymp/internal/resources"
)

func TestJobStateLifecycle(t *testing.T) {
	j := mapReduce(1, 0)
	s := NewJobState(j)

	if s.Done() {
		t.Fatal("new job should not be done")
	}
	if !s.PhaseReady(0) {
		t.Fatal("root phase should be ready")
	}
	if s.PhaseReady(1) {
		t.Fatal("reduce should wait for map")
	}
	if got := s.ReadyPhases(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("ready phases: %v", got)
	}
	if got := len(s.PendingTasks(0)); got != 4 {
		t.Fatalf("pending: %d", got)
	}

	s.MarkRunning(0, 0)
	if s.Task(0, 0) != TaskRunning {
		t.Fatal("task should be running")
	}
	if got := len(s.PendingTasks(0)); got != 3 {
		t.Fatalf("pending after run: %d", got)
	}
	if got := s.RunningTasks(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("running: %v", got)
	}

	for l := 0; l < 4; l++ {
		if err := s.MarkDone(0, l); err != nil {
			t.Fatal(err)
		}
	}
	if !s.PhaseDone(0) || !s.PhaseReady(1) {
		t.Fatal("map done should unlock reduce")
	}
	if s.Done() {
		t.Fatal("job not done until reduce completes")
	}
	if err := s.MarkDone(0, 0); err == nil {
		t.Fatal("double completion should error")
	}

	for l := 0; l < 2; l++ {
		if err := s.MarkDone(1, l); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Done() {
		t.Fatal("job should be done")
	}
	if got := s.ReadyPhases(); len(got) != 0 {
		t.Fatalf("done job has ready phases: %v", got)
	}
}

func TestUpdatedVolumeShrinks(t *testing.T) {
	total := resources.Cores(100, 200)
	j := mapReduce(1, 0)
	s := NewJobState(j)
	v0 := s.UpdatedVolume(total, 1.5)
	if math.Abs(v0-j.EffectiveVolume(total, 1.5)) > 1e-12 {
		t.Fatalf("initial volume must equal static volume: %v vs %v", v0, j.EffectiveVolume(total, 1.5))
	}
	if err := s.MarkDone(0, 0); err != nil {
		t.Fatal(err)
	}
	v1 := s.UpdatedVolume(total, 1.5)
	if v1 >= v0 {
		t.Fatalf("volume must shrink after completion: %v -> %v", v0, v1)
	}
	// One map task's contribution: e=13, d=0.01.
	if math.Abs(v0-v1-0.13) > 1e-12 {
		t.Errorf("shrink amount: %v", v0-v1)
	}
}

func TestUpdatedProcessingTime(t *testing.T) {
	j := mapReduce(1, 0)
	s := NewJobState(j)
	e0 := s.UpdatedProcessingTime(1.5)
	if math.Abs(e0-20.5) > 1e-12 {
		t.Fatalf("initial e: %v", e0)
	}
	for l := 0; l < 4; l++ {
		if err := s.MarkDone(0, l); err != nil {
			t.Fatal(err)
		}
	}
	e1 := s.UpdatedProcessingTime(1.5)
	if math.Abs(e1-7.5) > 1e-12 {
		t.Fatalf("after map: %v", e1)
	}
	// Finishing only part of a phase does not shorten the critical path.
	j2 := mapReduce(2, 0)
	s2 := NewJobState(j2)
	if err := s2.MarkDone(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := s2.UpdatedProcessingTime(1.5); math.Abs(got-20.5) > 1e-12 {
		t.Errorf("partial phase should keep cp: %v", got)
	}
}

func TestFlowAndRunningTime(t *testing.T) {
	j := mapReduce(1, 10)
	s := NewJobState(j)
	if s.Flowtime() != -1 || s.RunningTime() != -1 {
		t.Fatal("unfinished job must report -1")
	}
	s.FirstStart = 15
	s.Finish = 40
	if got := s.Flowtime(); got != 30 {
		t.Errorf("flowtime: %d", got)
	}
	if got := s.RunningTime(); got != 25 {
		t.Errorf("running: %d", got)
	}
}

func TestRemainingTasks(t *testing.T) {
	j := mapReduce(1, 0)
	s := NewJobState(j)
	if got := s.RemainingTasks(0); got != 4 {
		t.Fatalf("remaining: %d", got)
	}
	if err := s.MarkDone(0, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.RemainingTasks(0); got != 3 {
		t.Fatalf("remaining: %d", got)
	}
}

func TestMarkRunningIdempotentOnDone(t *testing.T) {
	j := SingleTask(1, 0, resources.Cores(1, 1), 5, 0)
	s := NewJobState(j)
	if err := s.MarkDone(0, 0); err != nil {
		t.Fatal(err)
	}
	s.MarkRunning(0, 0) // must not resurrect a done task
	if s.Task(0, 0) != TaskDone {
		t.Fatal("MarkRunning must not override done")
	}
}
