package workload

import (
	"math"
	"testing"
	"testing/quick"

	"dollymp/internal/resources"
)

func mapReduce(id JobID, arrival int64) *Job {
	return Chain(id, "wc", "wordcount", arrival, []Phase{
		{Name: "map", Tasks: 4, Demand: resources.Cores(1, 2), MeanDuration: 10, SDDuration: 2},
		{Name: "reduce", Tasks: 2, Demand: resources.Cores(2, 4), MeanDuration: 6, SDDuration: 1},
	})
}

func TestValidateOK(t *testing.T) {
	if err := mapReduce(1, 0).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SingleTask(2, 5, resources.Cores(1, 1), 3, 0).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Job { return mapReduce(1, 0) }
	cases := []struct {
		name   string
		mutate func(*Job)
	}{
		{"no phases", func(j *Job) { j.Phases = nil }},
		{"zero tasks", func(j *Job) { j.Phases[0].Tasks = 0 }},
		{"zero duration", func(j *Job) { j.Phases[0].MeanDuration = 0 }},
		{"negative sd", func(j *Job) { j.Phases[0].SDDuration = -1 }},
		{"zero demand", func(j *Job) { j.Phases[0].Demand = resources.Vec(0, 0) }},
		{"negative demand", func(j *Job) { j.Phases[0].Demand = resources.Vec(-1, 5) }},
		{"bad parent", func(j *Job) { j.Phases[1].Parents = []PhaseID{7} }},
		{"self parent", func(j *Job) { j.Phases[1].Parents = []PhaseID{1} }},
		{"cycle", func(j *Job) { j.Phases[0].Parents = []PhaseID{1} }},
	}
	for _, c := range cases {
		j := base()
		c.mutate(j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestTopoOrder(t *testing.T) {
	// Diamond: 0 → {1, 2} → 3.
	j := &Job{ID: 1, Phases: []Phase{
		{Name: "a", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: 1},
		{Name: "b", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: 1, Parents: []PhaseID{0}},
		{Name: "c", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: 1, Parents: []PhaseID{0}},
		{Name: "d", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: 1, Parents: []PhaseID{1, 2}},
	}}
	order, err := j.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[PhaseID]int)
	for i, k := range order {
		pos[k] = i
	}
	for k, p := range j.Phases {
		for _, par := range p.Parents {
			if pos[par] >= pos[PhaseID(k)] {
				t.Fatalf("parent %d after child %d in %v", par, k, order)
			}
		}
	}
}

func TestEffectiveDuration(t *testing.T) {
	p := Phase{MeanDuration: 10, SDDuration: 4}
	if got := p.EffectiveDuration(1.5); got != 16 {
		t.Errorf("e: %v", got)
	}
	if got := p.EffectiveDuration(0); got != 10 {
		t.Errorf("e(r=0): %v", got)
	}
}

func TestEffectiveVolume(t *testing.T) {
	total := resources.Cores(100, 200)
	j := mapReduce(1, 0)
	// map: 4 tasks × e=13 × d = max(1/100, 2/200)=0.01 → 0.52
	// reduce: 2 × e=7.5 × d = max(2/100, 4/200)=0.02 → 0.30
	want := 4*13*0.01 + 2*7.5*0.02
	if got := j.EffectiveVolume(total, 1.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("volume: got %v, want %v", got, want)
	}
}

func TestCriticalPath(t *testing.T) {
	j := mapReduce(1, 0)
	// chain: 13 + 7.5
	if got := j.CriticalPathLength(1.5); math.Abs(got-20.5) > 1e-12 {
		t.Errorf("cp: %v", got)
	}
	// Diamond where one branch is longer.
	d := &Job{ID: 2, Phases: []Phase{
		{Name: "a", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: 5},
		{Name: "b", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: 20, Parents: []PhaseID{0}},
		{Name: "c", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: 3, Parents: []PhaseID{0}},
		{Name: "d", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: 2, Parents: []PhaseID{1, 2}},
	}}
	if got := d.CriticalPathLength(0); got != 27 {
		t.Errorf("diamond cp: %v", got)
	}
}

func TestChainWiring(t *testing.T) {
	j := mapReduce(3, 7)
	if len(j.Phases[0].Parents) != 0 {
		t.Error("first phase should have no parents")
	}
	if len(j.Phases[1].Parents) != 1 || j.Phases[1].Parents[0] != 0 {
		t.Error("second phase should depend on first")
	}
	if j.Arrival != 7 || j.TotalTasks() != 6 {
		t.Errorf("arrival/tasks: %d/%d", j.Arrival, j.TotalTasks())
	}
}

func TestTaskRefString(t *testing.T) {
	r := TaskRef{Job: 3, Phase: 1, Index: 2}
	if r.String() != "j3/p1/t2" {
		t.Errorf("got %q", r.String())
	}
}

// Property: volume is monotone in r (more variance penalty, more volume).
func TestVolumeMonotoneInR(t *testing.T) {
	total := resources.Cores(100, 100)
	f := func(sd uint8, r1, r2 uint8) bool {
		j := SingleTask(1, 0, resources.Cores(1, 1), 10, float64(sd))
		a, b := float64(r1)/10, float64(r2)/10
		if a > b {
			a, b = b, a
		}
		return j.EffectiveVolume(total, a) <= j.EffectiveVolume(total, b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: critical path ≤ sum of all effective durations, and ≥ max
// single phase duration.
func TestCriticalPathBounds(t *testing.T) {
	f := func(d1, d2, d3 uint8) bool {
		m1, m2, m3 := float64(d1)+1, float64(d2)+1, float64(d3)+1
		j := Chain(1, "x", "x", 0, []Phase{
			{Name: "a", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: m1},
			{Name: "b", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: m2},
			{Name: "c", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: m3},
		})
		cp := j.CriticalPathLength(0)
		sum := m1 + m2 + m3
		return math.Abs(cp-sum) < 1e-9 // a chain's critical path is the total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
