package trace

import (
	"fmt"

	"dollymp/internal/resources"
	"dollymp/internal/stats"
	"dollymp/internal/workload"
)

// Arrival describes how job arrival times are laid out.
type Arrival struct {
	// Kind selects the process.
	Kind ArrivalKind
	// MeanGap is the mean inter-arrival gap in slots.
	MeanGap float64
}

// ArrivalKind enumerates arrival processes.
type ArrivalKind int

// Supported arrival processes.
const (
	// FixedInterval spaces arrivals exactly MeanGap apart, the "around
	// 200 seconds" / "around 20 seconds" setups of §6.2.
	FixedInterval ArrivalKind = iota
	// Poisson draws exponential gaps with mean MeanGap.
	Poisson
	// AllAtZero submits every job at slot zero (the transient setting
	// of §4).
	AllAtZero
)

// next returns the arrival slot after prev.
func (a Arrival) next(prev int64, rng *stats.RNG) int64 {
	switch a.Kind {
	case FixedInterval:
		gap := int64(a.MeanGap + 0.5)
		if gap < 1 {
			gap = 1
		}
		return prev + gap
	case Poisson:
		gap := int64(rng.Exp(a.MeanGap) + 0.5)
		if gap < 1 {
			gap = 1
		}
		return prev + gap
	case AllAtZero:
		return 0
	default:
		panic(fmt.Sprintf("trace: unknown arrival kind %d", a.Kind))
	}
}

// MixedDeployment builds the §6.2 deployment workload: n jobs, half
// PageRank (half of those 10 GB inputs, half 1 GB) and half WordCount
// (all 10 GB), with the given arrival process. Deterministic per seed.
func MixedDeployment(n int, arrival Arrival, seed uint64) []*workload.Job {
	rng := stats.NewRNG(seed)
	jobs := make([]*workload.Job, 0, n)
	var t int64
	for i := 0; i < n; i++ {
		if i > 0 || arrival.Kind == FixedInterval || arrival.Kind == Poisson {
			t = arrival.next(t, rng)
		}
		var j *workload.Job
		switch {
		case i%2 == 0: // WordCount, 10 GB
			j = WordCount(workload.JobID(i), t, 10, rng.Split(uint64(i)))
		case i%4 == 1: // PageRank, 10 GB
			j = PageRank(workload.JobID(i), t, 10, rng.Split(uint64(i)))
		default: // PageRank, ~1 GB
			j = PageRank(workload.JobID(i), t, 1, rng.Split(uint64(i)))
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// Homogeneous builds n jobs of a single application ("wordcount" or
// "pagerank"), the §6.2.2 heavy-load experiments (500 jobs, ~20 s gaps).
func Homogeneous(app string, n int, inputGB float64, arrival Arrival, seed uint64) ([]*workload.Job, error) {
	rng := stats.NewRNG(seed)
	jobs := make([]*workload.Job, 0, n)
	var t int64
	for i := 0; i < n; i++ {
		if i > 0 {
			t = arrival.next(t, rng)
		}
		var j *workload.Job
		switch app {
		case "wordcount":
			j = WordCount(workload.JobID(i), t, inputGB, rng.Split(uint64(i)))
		case "pagerank":
			j = PageRank(workload.JobID(i), t, inputGB, rng.Split(uint64(i)))
		default:
			return nil, fmt.Errorf("trace: unknown application %q", app)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// GoogleLike describes the synthetic Google-trace mix of §6.3.
type GoogleLike struct {
	// Jobs is the number of jobs to generate.
	Jobs int
	// MeanGap is the mean (exponential) inter-arrival gap in slots.
	MeanGap float64
	// Seed makes the trace reproducible.
	Seed uint64
	// StragglerPhaseFrac is the fraction of phases that contain
	// stragglers (0.70 in the traces the paper cites).
	StragglerPhaseFrac float64
	// MaxSlowdown is the worst-case straggler slowdown (20× per §6.3).
	MaxSlowdown float64
}

// DefaultGoogleLike returns the §6.3 statistics.
func DefaultGoogleLike(jobs int, meanGap float64, seed uint64) GoogleLike {
	return GoogleLike{
		Jobs:               jobs,
		MeanGap:            meanGap,
		Seed:               seed,
		StragglerPhaseFrac: 0.70,
		MaxSlowdown:        20,
	}
}

// Generate produces the job list. Job sizes (task counts) are heavy-tail
// distributed: 95% small jobs per the Google trace analysis the paper
// cites, with a tail of large jobs. Straggler-prone phases get a high
// duration SD so the fitted Pareto is heavy-tailed (small α); stable
// phases get a low SD.
func (g GoogleLike) Generate() []*workload.Job {
	jobs := make([]*workload.Job, 0, g.Jobs)
	g.Emit(func(j *workload.Job) error { // error-free emit never fails
		jobs = append(jobs, j)
		return nil
	})
	return jobs
}

// Emit generates the same jobs as Generate — bit-for-bit, same seed
// discipline — but hands each to emit as it is drawn instead of
// materializing the list, so a multi-million-job trace can stream to
// disk in O(1) memory. Generation stops at the first emit error, which
// is returned.
func (g GoogleLike) Emit(emit func(*workload.Job) error) error {
	rng := stats.NewRNG(g.Seed)
	arr := Arrival{Kind: Poisson, MeanGap: g.MeanGap}
	var t int64
	for i := 0; i < g.Jobs; i++ {
		if i > 0 {
			t = arr.next(t, rng)
		}
		jrng := rng.Split(uint64(i))
		if err := emit(g.job(workload.JobID(i), t, jrng)); err != nil {
			return err
		}
	}
	return nil
}

func (g GoogleLike) job(id workload.JobID, arrival int64, rng *stats.RNG) *workload.Job {
	// Heavy-tailed job size: Pareto with α≈1.8 truncated to [1, 400].
	sizeDist := stats.Pareto{Alpha: 1.8, Xm: 2}
	nTasks := int(sizeDist.Sample(rng))
	if nTasks < 1 {
		nTasks = 1
	}
	if nTasks > 400 {
		nTasks = 400
	}
	// 1–3 phases, sequential (the trace replay of §6.3 treats DAGs as
	// phase chains; Graphene-style irregular DAGs are out of scope).
	nPhases := 1 + rng.Intn(3)
	phases := make([]workload.Phase, 0, nPhases)
	for k := 0; k < nPhases; k++ {
		tasks := nTasks
		if k > 0 {
			tasks = max(1, nTasks/(1+rng.Intn(4)))
		}
		// Demands follow the Google-trace marginals: most tasks are
		// small (≤1 core, ≤2 GiB), a few are large.
		var demand resources.Vector
		switch {
		case rng.Bool(0.70):
			demand = resources.Vec(500+int64(rng.Intn(501)), 1024+int64(rng.Intn(1025)))
		case rng.Bool(0.67):
			demand = resources.Vec(1000+int64(rng.Intn(1001)), 2048+int64(rng.Intn(2049)))
		default:
			demand = resources.Vec(2000+int64(rng.Intn(2001)), 4096+int64(rng.Intn(4097)))
		}
		mean := rng.Range(4, 24) // 20 s – 2 min at 5 s slots
		var sd float64
		if rng.Bool(g.StragglerPhaseFrac) {
			// Straggler-prone phase: heavy tail. CV in [1, 2.2] puts
			// the fitted Pareto α in ≈[2.0, 2.4]; with slowdown cap
			// MaxSlowdown the worst draw is ~20× the typical task.
			sd = mean * rng.Range(1.0, 2.2)
		} else {
			sd = mean * rng.Range(0.1, 0.35)
		}
		phases = append(phases, workload.Phase{
			Name:         fmt.Sprintf("phase-%d", k),
			Tasks:        tasks,
			Demand:       demand,
			MeanDuration: mean,
			SDDuration:   sd,
		})
	}
	return workload.Chain(id, fmt.Sprintf("g-%d", id), "google", arrival, phases)
}
