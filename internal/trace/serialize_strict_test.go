package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dollymp/internal/stats"
	"dollymp/internal/workload"
)

func roundTripBody(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, []*workload.Job{WordCount(1, 0, 1, stats.NewRNG(1))}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Regression: Read used to silently accept unknown fields and trailing
// JSON documents; both must now fail loudly.
func TestReadRejectsUnknownFields(t *testing.T) {
	body := roundTripBody(t)
	if _, err := Read(bytes.NewReader(body)); err != nil {
		t.Fatalf("well-formed trace must parse: %v", err)
	}

	withUnknown := bytes.Replace(body, []byte(`"version"`), []byte(`"bogus_field": 1, "version"`), 1)
	if _, err := Read(bytes.NewReader(withUnknown)); err == nil || !strings.Contains(err.Error(), "bogus_field") {
		t.Fatalf("unknown top-level field must be rejected, got %v", err)
	}

	nested := bytes.Replace(body, []byte(`"Name": "map"`), []byte(`"Name": "map", "Oops": true`), 1)
	if !bytes.Contains(nested, []byte("Oops")) {
		t.Fatal("test fixture did not inject the unknown field")
	}
	if _, err := Read(bytes.NewReader(nested)); err == nil {
		t.Fatal("unknown nested field must be rejected")
	}
}

func TestReadRejectsTrailingData(t *testing.T) {
	body := roundTripBody(t)
	for name, trailer := range map[string]string{
		"second document": `{"version": 1, "jobs": []}`,
		"stray token":     `42`,
		"garbage":         `trailing`,
	} {
		if _, err := Read(bytes.NewReader(append(append([]byte{}, body...), trailer...))); err == nil {
			t.Errorf("%s: trailing data must be rejected", name)
		}
	}
	// Trailing whitespace stays legal (Write itself emits a final newline).
	if _, err := Read(bytes.NewReader(append(append([]byte{}, body...), " \n\t"...))); err != nil {
		t.Errorf("trailing whitespace must remain accepted: %v", err)
	}
}

func TestDecodeJobStrict(t *testing.T) {
	j := WordCount(7, 0, 1, stats.NewRNG(1))
	body, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJob(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || len(got.Phases) != len(j.Phases) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := DecodeJob(strings.NewReader(`{"ID": 1, "Mystery": 2}`)); err == nil {
		t.Fatal("unknown field must be rejected")
	}
	if _, err := DecodeJob(strings.NewReader(`{"ID": 1}`)); err == nil {
		t.Fatal("invalid job (no phases) must be rejected")
	}
}

func TestDecodeSubmissionDispatch(t *testing.T) {
	// Trace-file bodies fan out to every contained job.
	jobs, err := DecodeSubmission(roundTripBody(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("trace body: %d jobs", len(jobs))
	}
	// Single-job bodies wrap into a one-element batch.
	body, err := json.Marshal(WordCount(3, 0, 1, stats.NewRNG(2)))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err = DecodeSubmission(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].App != "wordcount" {
		t.Fatalf("single-job body: %+v", jobs)
	}
	if _, err := DecodeSubmission([]byte(`not json`)); err == nil {
		t.Fatal("non-JSON body must be rejected")
	}
	if _, err := DecodeSubmission([]byte(`{"version": 99, "jobs": []}`)); err == nil {
		t.Fatal("unsupported version must be rejected")
	}
}
