package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dollymp/internal/workload"
)

func streamJobs(t *testing.T, n int) []*workload.Job {
	t.Helper()
	jobs := DefaultGoogleLike(n, 3, 42).Generate()
	if len(jobs) != n {
		t.Fatalf("generated %d jobs, want %d", len(jobs), n)
	}
	return jobs
}

func encodeStream(t *testing.T, jobs []*workload.Job) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := w.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamRoundTrip writes jobs as frames and reads them back
// identical, ending in a clean io.EOF.
func TestStreamRoundTrip(t *testing.T) {
	jobs := streamJobs(t, 50)
	raw := encodeStream(t, jobs)
	if !IsStream(raw) {
		t.Fatal("encoded stream not recognized by IsStream")
	}
	s, err := NewStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range jobs {
		got, err := s.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d round-trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("clean end must be io.EOF, got %v", err)
	}
	if s.Decoded() != int64(len(jobs)) {
		t.Fatalf("decoded %d frames, want %d", s.Decoded(), len(jobs))
	}
	if s.Offset() != int64(len(raw)) {
		t.Fatalf("final offset %d, want file size %d", s.Offset(), len(raw))
	}
}

// TestStreamFileRoundTrip covers the file-backed helpers.
func TestStreamFileRoundTrip(t *testing.T) {
	jobs := streamJobs(t, 20)
	path := filepath.Join(t.TempDir(), "t.trace")
	w, err := CreateStream(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := w.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 20 {
		t.Fatalf("count %d, want 20", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := 0
	for {
		_, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 20 {
		t.Fatalf("read %d jobs, want 20", n)
	}
}

// TestStreamTornAtEveryOffset truncates a small stream at every byte
// position: every truncation either still yields an intact prefix
// ending in a *CorruptError whose offset names the torn frame, or (on
// a frame boundary) a clean EOF with fewer jobs.
func TestStreamTornAtEveryOffset(t *testing.T) {
	jobs := streamJobs(t, 5)
	raw := encodeStream(t, jobs)
	for cut := 0; cut < len(raw); cut++ {
		s, err := NewStream(bytes.NewReader(raw[:cut]))
		if err != nil {
			// Header itself torn: must be typed.
			var ce *CorruptError
			if cut >= streamHeaderLen || !errors.As(err, &ce) {
				t.Fatalf("cut %d: open failed untyped: %v", cut, err)
			}
			continue
		}
		decoded := 0
		for {
			_, err := s.Next()
			if err == nil {
				decoded++
				continue
			}
			if err == io.EOF {
				break // clean frame boundary
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("cut %d: untyped error after %d jobs: %v", cut, decoded, err)
			}
			if ce.Offset < int64(streamHeaderLen) || ce.Offset > int64(cut) {
				t.Fatalf("cut %d: corrupt offset %d outside (header, cut]", cut, ce.Offset)
			}
			// Errors are sticky.
			if _, err2 := s.Next(); err2 != err {
				t.Fatalf("cut %d: error not sticky: %v then %v", cut, err, err2)
			}
			break
		}
		if decoded > len(jobs) {
			t.Fatalf("cut %d: decoded %d jobs from a truncated stream of %d", cut, decoded, len(jobs))
		}
	}
}

// TestStreamChecksumMismatch flips one payload byte: the CRC must catch
// it and name the frame.
func TestStreamChecksumMismatch(t *testing.T) {
	raw := encodeStream(t, streamJobs(t, 3))
	// Flip a byte well into the first frame's payload.
	mut := append([]byte(nil), raw...)
	mut[streamHeaderLen+8+4] ^= 0xff
	s, err := NewStream(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Next()
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("flipped byte not detected as corruption: %v", err)
	}
	if ce.Frame != 0 || ce.Offset != int64(streamHeaderLen) {
		t.Fatalf("corruption attributed to frame %d offset %d, want frame 0 offset %d", ce.Frame, ce.Offset, streamHeaderLen)
	}
	if !strings.Contains(ce.Error(), "checksum") {
		t.Fatalf("error does not mention the checksum: %v", ce)
	}
}

// TestStreamRejectsWrongMagicAndVersion pins the header checks.
func TestStreamRejectsWrongMagicAndVersion(t *testing.T) {
	if _, err := NewStream(strings.NewReader(`{"version":1,"jobs":[]}`)); err == nil {
		t.Fatal("JSON envelope accepted as a stream")
	}
	bad := append([]byte(nil), streamMagic[:]...)
	bad = append(bad, 99, 0, 0, 0) // version 99
	if _, err := NewStream(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version must be rejected by name, got %v", err)
	}
}

// TestStreamRejectsInvalidJob: a well-framed payload that fails job
// validation is corruption, not a silently-admitted job.
func TestStreamRejectsInvalidJob(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&workload.Job{ID: 1}); err == nil {
		t.Fatal("StreamWriter accepted a job with no phases")
	}
}

// TestReadTruncatedTypedError: the JSON envelope reader reports
// truncation as a *CorruptError naming the byte offset, not a bare
// unexpected-EOF.
func TestReadTruncatedTypedError(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, streamJobs(t, 4)); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	cut := whole[:len(whole)/2]
	_, err := Read(bytes.NewReader(cut))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("truncated envelope not typed: %v", err)
	}
	if ce.Offset <= 0 || ce.Offset > int64(len(cut)) {
		t.Fatalf("truncation offset %d outside (0, %d]", ce.Offset, len(cut))
	}
	if !strings.Contains(err.Error(), "byte") {
		t.Fatalf("error does not name the byte offset: %v", err)
	}
	// An intact envelope still round-trips.
	jobs, err := Read(bytes.NewReader(whole))
	if err != nil || len(jobs) != 4 {
		t.Fatalf("intact envelope: %d jobs, err %v", len(jobs), err)
	}
}

// TestEmitMatchesGenerate pins the streaming generator to the
// materializing one bit-for-bit, and its early-exit contract.
func TestEmitMatchesGenerate(t *testing.T) {
	g := DefaultGoogleLike(200, 2.5, 7)
	want := g.Generate()
	var got []*workload.Job
	if err := g.Emit(func(j *workload.Job) error {
		got = append(got, j)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Emit and Generate disagree")
	}
	sentinel := errors.New("stop")
	n := 0
	if err := g.Emit(func(*workload.Job) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	}); err != sentinel {
		t.Fatalf("emit error not propagated: %v", err)
	}
	if n != 3 {
		t.Fatalf("generation continued after emit error: %d calls", n)
	}
}

// TestStreamGenerationConstantMemory streams a trace to disk via Emit
// and reads it back counting jobs, without ever holding the job list.
func TestStreamGenerationConstantMemory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.trace")
	w, err := CreateStream(path)
	if err != nil {
		t.Fatal(err)
	}
	g := DefaultGoogleLike(1000, 1.5, 11)
	if err := g.Emit(w.Append); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= int64(streamHeaderLen) {
		t.Fatalf("trace file implausibly small: %d bytes", fi.Size())
	}
	s, err := OpenStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var prevArrival int64
	n := 0
	for {
		j, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if j.Arrival < prevArrival {
			t.Fatalf("job %d arrival %d before predecessor's %d: generator must emit in arrival order", j.ID, j.Arrival, prevArrival)
		}
		prevArrival = j.Arrival
		n++
	}
	if n != 1000 {
		t.Fatalf("replayed %d jobs, want 1000", n)
	}
}
