package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"dollymp/internal/workload"
)

// File is the on-disk trace format: a versioned JSON envelope so replays
// are stable across releases.
type File struct {
	Version int             `json:"version"`
	Jobs    []*workload.Job `json:"jobs"`
}

// FormatVersion is the current trace file version.
const FormatVersion = 1

// Write serializes jobs as indented JSON.
func Write(w io.Writer, jobs []*workload.Job) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(File{Version: FormatVersion, Jobs: jobs})
}

// Read parses a trace file and validates every job.
func Read(r io.Reader) ([]*workload.Job, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", f.Version, FormatVersion)
	}
	for _, j := range f.Jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: invalid job: %w", err)
		}
	}
	return f.Jobs, nil
}
