package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"dollymp/internal/workload"
)

// File is the on-disk trace format: a versioned JSON envelope so replays
// are stable across releases.
type File struct {
	Version int             `json:"version"`
	Jobs    []*workload.Job `json:"jobs"`
}

// FormatVersion is the current trace file version.
const FormatVersion = 1

// Write serializes jobs as indented JSON.
func Write(w io.Writer, jobs []*workload.Job) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(File{Version: FormatVersion, Jobs: jobs})
}

// Read parses a trace file and validates every job. Decoding is strict:
// unknown fields and trailing JSON documents are errors, so a mangled or
// wrong-schema upload (e.g. to a service's POST /v1/jobs) fails loudly
// instead of being silently half-accepted.
func Read(r io.Reader) ([]*workload.Job, error) {
	var f File
	if err := decodeStrict(r, &f); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", f.Version, FormatVersion)
	}
	for _, j := range f.Jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: invalid job: %w", err)
		}
	}
	return f.Jobs, nil
}

// DecodeJob strictly parses one job object (no envelope) and validates
// it — the single-job body format of the service API.
func DecodeJob(r io.Reader) (*workload.Job, error) {
	var j workload.Job
	if err := decodeStrict(r, &j); err != nil {
		return nil, fmt.Errorf("trace: decode job: %w", err)
	}
	if err := j.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &j, nil
}

// DecodeSubmission parses a POST /v1/jobs body, which is either a v1
// trace file (recognized by its "version" envelope) or a single job
// object. Both forms decode strictly.
func DecodeSubmission(body []byte) ([]*workload.Job, error) {
	var probe struct {
		Version *int `json:"version"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return nil, fmt.Errorf("trace: body is not a JSON object: %w", err)
	}
	if probe.Version != nil {
		return Read(bytes.NewReader(body))
	}
	j, err := DecodeJob(bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	return []*workload.Job{j}, nil
}

// decodeStrict decodes exactly one JSON value into v, rejecting unknown
// fields and any trailing non-whitespace data. A document that ends
// mid-value — a truncated download, a torn write — comes back as a
// *CorruptError naming the byte offset where decoding stopped, so the
// caller can report *where* the file went wrong, not just that it did
// (mirroring the journal's positional torn-tail reporting).
func decodeStrict(r io.Reader, v interface{}) error {
	cr := &countingReader{r: r}
	dec := json.NewDecoder(cr)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// The document ran out mid-value: the corruption offset is
			// where the input ends (the decoder consumed it all looking
			// for the rest).
			return &CorruptError{Offset: cr.n, Frame: -1,
				Reason: "truncated JSON document", Err: err}
		}
		if syn, ok := err.(*json.SyntaxError); ok {
			return &CorruptError{Offset: syn.Offset, Frame: -1,
				Reason: "malformed JSON", Err: err}
		}
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}

// countingReader tracks how many bytes the decoder has consumed, so a
// truncated document can be reported positionally.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
