package trace

// The streamed trace format: the on-disk shape of multi-million-job
// arrival processes. The JSON envelope format (serialize.go) holds the
// whole job list in one document, so both writing and reading it
// materialize every job — fine for a 6000-job experiment, fatal for the
// Google-trace-scale replays (25M jobs would be tens of gigabytes of
// heap). A streamed trace is instead a sequence of self-verifying
// frames, one job each, so a generator can emit jobs as it draws them
// and a replayer can decode exactly one job ahead of the engine.
//
// # File format
//
//	header: magic "dollytrc" (8 bytes) + uint32 LE format version
//	frame:  uint32 LE payload length + uint32 LE CRC32-IEEE(payload)
//	        + payload (one compact-JSON workload.Job)
//
// The framing mirrors the journal's record format (internal/journal):
// the CRC makes every frame self-verifying, so truncation or corruption
// is detected positionally and reported as a *CorruptError naming the
// byte offset of the bad frame. Unlike the journal, a torn tail is an
// error here, not an expected crash artifact: a trace is written once
// and replayed many times, so a short file means the generation step
// was interrupted and the trace must be regenerated (or compacted down
// to its intact prefix with dollymp-trace -compact).

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"dollymp/internal/workload"
)

// Stream format constants.
const (
	// StreamVersion is the streamed-trace format version.
	StreamVersion = 1
	// MaxFrameBytes bounds one frame's payload; a length prefix beyond
	// it is corruption, not an allocation request.
	MaxFrameBytes = 16 << 20
)

var streamMagic = [8]byte{'d', 'o', 'l', 'l', 'y', 't', 'r', 'c'}

// streamHeaderLen is the fixed header size in bytes.
const streamHeaderLen = len(streamMagic) + 4

// IsStream sniffs whether b (the first bytes of a file) is a streamed
// trace. It needs at least len(streamMagic) bytes to say yes.
func IsStream(b []byte) bool {
	if len(b) < len(streamMagic) {
		return false
	}
	for i, c := range streamMagic {
		if b[i] != c {
			return false
		}
	}
	return true
}

// StreamWriter appends jobs to a streamed trace one frame at a time.
// Writes are buffered; call Flush (or Close on a FileStreamWriter)
// before handing the underlying file to a reader.
type StreamWriter struct {
	bw    *bufio.Writer
	count int64
	hdr   [8]byte // frame header scratch: length + CRC
}

// NewStreamWriter writes the stream header and returns a writer.
func NewStreamWriter(w io.Writer) (*StreamWriter, error) {
	sw := &StreamWriter{bw: bufio.NewWriterSize(w, 1<<20)}
	if _, err := sw.bw.Write(streamMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: write stream header: %w", err)
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], StreamVersion)
	if _, err := sw.bw.Write(v[:]); err != nil {
		return nil, fmt.Errorf("trace: write stream header: %w", err)
	}
	return sw, nil
}

// Append validates and writes one job as a frame.
func (w *StreamWriter) Append(j *workload.Job) error {
	if err := j.Validate(); err != nil {
		return fmt.Errorf("trace: append: %w", err)
	}
	payload, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("trace: append: %w", err)
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("trace: append: job %d encodes to %d bytes (frame cap %d)", j.ID, len(payload), MaxFrameBytes)
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("trace: append: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("trace: append: %w", err)
	}
	w.count++
	return nil
}

// Count returns the number of jobs appended so far.
func (w *StreamWriter) Count() int64 { return w.count }

// Flush drains the write buffer to the underlying writer.
func (w *StreamWriter) Flush() error { return w.bw.Flush() }

// CorruptError reports a streamed or envelope trace that stops making
// sense partway through — a torn frame, a checksum mismatch, or a
// truncated JSON document — with the byte offset where decoding failed,
// mirroring the journal's positional torn-tail reporting. Unlike a
// journal, a trace is never legitimately torn, so callers should treat
// this as "regenerate (or -compact) the file", not "truncate and carry
// on".
type CorruptError struct {
	// Offset is the byte offset at which the bad frame or truncated
	// document starts (for framed traces, the frame's header offset).
	Offset int64
	// Frame is the index of the bad frame (0-based); -1 for envelope
	// (JSON) traces, which have no frames.
	Frame int64
	// Reason says what failed to verify.
	Reason string
	// Err is the underlying decode error, if any.
	Err error
}

func (e *CorruptError) Error() string {
	where := fmt.Sprintf("byte %d", e.Offset)
	if e.Frame >= 0 {
		where = fmt.Sprintf("frame %d (byte %d)", e.Frame, e.Offset)
	}
	if e.Err != nil {
		return fmt.Sprintf("trace: corrupt at %s: %s: %v", where, e.Reason, e.Err)
	}
	return fmt.Sprintf("trace: corrupt at %s: %s", where, e.Reason)
}

// Unwrap exposes the underlying decode error to errors.Is/As.
func (e *CorruptError) Unwrap() error { return e.Err }

// Stream decodes a streamed trace one job at a time. Next returns
// io.EOF at a clean end of stream and *CorruptError on a torn or
// corrupt frame; it never materializes more than one job.
type Stream struct {
	br  *bufio.Reader
	off int64 // bytes consumed so far
	n   int64 // frames decoded so far
	buf []byte
	err error // sticky
}

// NewStream checks the stream header and returns a reader.
func NewStream(r io.Reader) (*Stream, error) {
	s := &Stream{br: bufio.NewReaderSize(r, 1<<20)}
	var hdr [streamHeaderLen]byte
	if _, err := io.ReadFull(s.br, hdr[:]); err != nil {
		return nil, &CorruptError{Offset: 0, Frame: -1, Reason: "short stream header", Err: err}
	}
	if !IsStream(hdr[:]) {
		return nil, fmt.Errorf("trace: not a streamed trace (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(hdr[len(streamMagic):]); v != StreamVersion {
		return nil, fmt.Errorf("trace: unsupported stream version %d (want %d)", v, StreamVersion)
	}
	s.off = int64(streamHeaderLen)
	return s, nil
}

// Next decodes and validates the next job. It returns io.EOF when the
// stream ends cleanly on a frame boundary, and a *CorruptError naming
// the byte offset on a torn or corrupt frame. Errors are sticky.
func (s *Stream) Next() (*workload.Job, error) {
	if s.err != nil {
		return nil, s.err
	}
	j, err := s.next()
	if err != nil {
		s.err = err
		return nil, err
	}
	return j, nil
}

func (s *Stream) next() (*workload.Job, error) {
	frameOff := s.off
	var hdr [8]byte
	n, err := io.ReadFull(s.br, hdr[:])
	if err == io.EOF && n == 0 {
		return nil, io.EOF // clean end on a frame boundary
	}
	if err != nil {
		return nil, &CorruptError{Offset: frameOff, Frame: s.n, Reason: "torn frame header", Err: err}
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > MaxFrameBytes {
		return nil, &CorruptError{Offset: frameOff, Frame: s.n,
			Reason: fmt.Sprintf("frame length %d exceeds cap %d", length, MaxFrameBytes)}
	}
	if cap(s.buf) < int(length) {
		s.buf = make([]byte, length)
	}
	payload := s.buf[:length]
	if _, err := io.ReadFull(s.br, payload); err != nil {
		return nil, &CorruptError{Offset: frameOff, Frame: s.n, Reason: "torn frame payload", Err: err}
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, &CorruptError{Offset: frameOff, Frame: s.n,
			Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", sum, got)}
	}
	var j workload.Job
	if err := json.Unmarshal(payload, &j); err != nil {
		return nil, &CorruptError{Offset: frameOff, Frame: s.n, Reason: "frame payload is not a job", Err: err}
	}
	if err := j.Validate(); err != nil {
		return nil, &CorruptError{Offset: frameOff, Frame: s.n, Reason: "invalid job", Err: err}
	}
	s.off += int64(8 + int(length))
	s.n++
	return &j, nil
}

// Offset returns the byte offset of the next unread frame.
func (s *Stream) Offset() int64 { return s.off }

// Decoded returns the number of frames decoded so far.
func (s *Stream) Decoded() int64 { return s.n }

// FileStream is a Stream over an opened file.
type FileStream struct {
	*Stream
	f *os.File
}

// OpenStream opens a streamed trace file for reading.
func OpenStream(path string) (*FileStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := NewStream(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &FileStream{Stream: s, f: f}, nil
}

// Close closes the underlying file.
func (fs *FileStream) Close() error { return fs.f.Close() }

// FileStreamWriter is a StreamWriter over a created file.
type FileStreamWriter struct {
	*StreamWriter
	f *os.File
}

// CreateStream creates (truncating) a streamed trace file for writing.
func CreateStream(path string) (*FileStreamWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewStreamWriter(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileStreamWriter{StreamWriter: w, f: f}, nil
}

// Close flushes buffered frames and closes the file.
func (fw *FileStreamWriter) Close() error {
	if err := fw.Flush(); err != nil {
		fw.f.Close()
		return err
	}
	return fw.f.Close()
}
