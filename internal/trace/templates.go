// Package trace generates the synthetic workloads the evaluation runs:
// WordCount and PageRank application templates (§6.2) and a Google-trace-
// like job mix (§6.3) reproducing the statistics the paper relies on —
// heavy-tailed task counts and durations, per-task CPU/memory demands,
// 70% of phases containing ≥15% stragglers up to 20× slower. Traces can
// be serialized to JSON for replay.
package trace

import (
	"fmt"

	"dollymp/internal/resources"
	"dollymp/internal/stats"
	"dollymp/internal/workload"
)

// Durations are in slots; with the paper's 5-second slot, a 60-slot map
// phase is five minutes of wall clock.

// WordCount builds the 2-phase map→reduce WordCount job of §6.2. Task
// count scales with input gigabytes (one map task per 128 MB block, a
// fixed map:reduce ratio), durations are heavy-tailed around means that
// scale weakly with input size.
func WordCount(id workload.JobID, arrival int64, inputGB float64, rng *stats.RNG) *workload.Job {
	mapTasks := int(inputGB*8 + 0.5) // one task per 128 MB
	if mapTasks < 1 {
		mapTasks = 1
	}
	reduceTasks := mapTasks / 4
	if reduceTasks < 1 {
		reduceTasks = 1
	}
	mapMean := rng.Range(8, 14)    // 40–70 s of map work
	reduceMean := rng.Range(6, 10) // 30–50 s of reduce work
	return workload.Chain(id, fmt.Sprintf("wordcount-%d", id), "wordcount", arrival, []workload.Phase{
		{
			Name:         "map",
			Tasks:        mapTasks,
			Demand:       resources.Vec(1000, 2048), // 1 core, 2 GiB
			MeanDuration: mapMean,
			SDDuration:   mapMean * rng.Range(0.3, 0.8),
		},
		{
			Name:         "reduce",
			Tasks:        reduceTasks,
			Demand:       resources.Vec(1500, 3072), // 1.5 cores, 3 GiB
			MeanDuration: reduceMean,
			SDDuration:   reduceMean * rng.Range(0.3, 0.7),
		},
	})
}

// PageRank builds the iterative PageRank job of §6.2: an init phase, a
// few rank iterations each depending on the previous one, and a finalize
// phase. Half the evaluation's PageRank jobs use 10 GB inputs and half
// ~1 GB.
func PageRank(id workload.JobID, arrival int64, inputGB float64, rng *stats.RNG) *workload.Job {
	tasksPerIter := int(inputGB*6 + 0.5)
	if tasksPerIter < 1 {
		tasksPerIter = 1
	}
	iters := 3
	phases := make([]workload.Phase, 0, iters+2)
	initMean := rng.Range(6, 10)
	phases = append(phases, workload.Phase{
		Name:         "init",
		Tasks:        tasksPerIter,
		Demand:       resources.Vec(1000, 3072),
		MeanDuration: initMean,
		SDDuration:   initMean * rng.Range(0.2, 0.5),
	})
	for i := 0; i < iters; i++ {
		m := rng.Range(10, 16)
		phases = append(phases, workload.Phase{
			Name:         fmt.Sprintf("iter-%d", i),
			Tasks:        tasksPerIter,
			Demand:       resources.Vec(2000, 4096), // 2 cores, 4 GiB
			MeanDuration: m,
			SDDuration:   m * rng.Range(0.4, 0.9),
		})
	}
	finMean := rng.Range(4, 7)
	phases = append(phases, workload.Phase{
		Name:         "finalize",
		Tasks:        max(1, tasksPerIter/3),
		Demand:       resources.Vec(1000, 2048),
		MeanDuration: finMean,
		SDDuration:   finMean * rng.Range(0.2, 0.4),
	})
	return workload.Chain(id, fmt.Sprintf("pagerank-%d", id), "pagerank", arrival, phases)
}

// TeraSort builds a three-phase sort job: sample (tiny, estimates the
// partition boundaries), partition (wide map), and sort (reduce-heavy,
// memory-bound). A classic MapReduce benchmark shape with one short
// phase ahead of two heavy ones.
func TeraSort(id workload.JobID, arrival int64, inputGB float64, rng *stats.RNG) *workload.Job {
	widthTasks := int(inputGB*8 + 0.5)
	if widthTasks < 1 {
		widthTasks = 1
	}
	sortTasks := max(1, widthTasks/2)
	sampleMean := rng.Range(2, 4)
	partMean := rng.Range(8, 14)
	sortMean := rng.Range(10, 18)
	return workload.Chain(id, fmt.Sprintf("terasort-%d", id), "terasort", arrival, []workload.Phase{
		{
			Name:         "sample",
			Tasks:        max(1, widthTasks/16),
			Demand:       resources.Vec(500, 1024),
			MeanDuration: sampleMean,
			SDDuration:   sampleMean * rng.Range(0.1, 0.3),
		},
		{
			Name:         "partition",
			Tasks:        widthTasks,
			Demand:       resources.Vec(1000, 2048),
			MeanDuration: partMean,
			SDDuration:   partMean * rng.Range(0.3, 0.8),
		},
		{
			Name:         "sort",
			Tasks:        sortTasks,
			Demand:       resources.Vec(1000, 6144), // memory-bound
			MeanDuration: sortMean,
			SDDuration:   sortMean * rng.Range(0.4, 0.9),
		},
	})
}

// MLIteration builds a diamond-DAG training job: a load phase fans out
// to two parallel gradient shards which join at an aggregation phase —
// the non-chain dependency structure Graphene-style schedulers target.
func MLIteration(id workload.JobID, arrival int64, scale float64, rng *stats.RNG) *workload.Job {
	shard := int(scale*4 + 0.5)
	if shard < 1 {
		shard = 1
	}
	loadMean := rng.Range(4, 8)
	gradMean := rng.Range(8, 14)
	aggMean := rng.Range(3, 6)
	return &workload.Job{
		ID:      id,
		Name:    fmt.Sprintf("mliter-%d", id),
		App:     "mliter",
		Arrival: arrival,
		Phases: []workload.Phase{
			{
				Name:         "load",
				Tasks:        shard,
				Demand:       resources.Vec(1000, 4096),
				MeanDuration: loadMean,
				SDDuration:   loadMean * rng.Range(0.1, 0.4),
			},
			{
				Name:         "grad-a",
				Tasks:        shard,
				Demand:       resources.Vec(2000, 2048),
				MeanDuration: gradMean,
				SDDuration:   gradMean * rng.Range(0.4, 0.9),
				Parents:      []workload.PhaseID{0},
			},
			{
				Name:         "grad-b",
				Tasks:        shard,
				Demand:       resources.Vec(2000, 2048),
				MeanDuration: gradMean,
				SDDuration:   gradMean * rng.Range(0.4, 0.9),
				Parents:      []workload.PhaseID{0},
			},
			{
				Name:         "aggregate",
				Tasks:        1,
				Demand:       resources.Vec(1000, 3072),
				MeanDuration: aggMean,
				SDDuration:   aggMean * rng.Range(0.1, 0.3),
				Parents:      []workload.PhaseID{1, 2},
			},
		},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
