package trace

import (
	"testing"

	"dollymp/internal/stats"
	"dollymp/internal/workload"
)

func TestTeraSortShape(t *testing.T) {
	j := TeraSort(1, 50, 10, stats.NewRNG(1))
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(j.Phases) != 3 {
		t.Fatalf("phases: %d", len(j.Phases))
	}
	if j.Phases[0].Name != "sample" || j.Phases[1].Name != "partition" || j.Phases[2].Name != "sort" {
		t.Fatal("phase names")
	}
	// Sample is much narrower than partition.
	if j.Phases[0].Tasks >= j.Phases[1].Tasks {
		t.Fatalf("sample %d should be narrower than partition %d",
			j.Phases[0].Tasks, j.Phases[1].Tasks)
	}
	// Sort is memory-heavy relative to partition.
	if j.Phases[2].Demand.MemMiB <= j.Phases[1].Demand.MemMiB {
		t.Fatal("sort should need more memory")
	}
	// Tiny input still validates.
	if err := TeraSort(2, 0, 0.01, stats.NewRNG(2)).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMLIterationDiamond(t *testing.T) {
	j := MLIteration(1, 0, 2, stats.NewRNG(3))
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(j.Phases) != 4 {
		t.Fatalf("phases: %d", len(j.Phases))
	}
	// Diamond: both gradient shards depend on load; aggregate on both.
	if len(j.Phases[1].Parents) != 1 || j.Phases[1].Parents[0] != 0 {
		t.Fatal("grad-a parents")
	}
	if len(j.Phases[2].Parents) != 1 || j.Phases[2].Parents[0] != 0 {
		t.Fatal("grad-b parents")
	}
	if len(j.Phases[3].Parents) != 2 {
		t.Fatal("aggregate parents")
	}
	// The two gradient phases must be concurrently ready after load.
	js := workload.NewJobState(j)
	for l := 0; l < j.Phases[0].Tasks; l++ {
		if err := js.MarkDone(0, l); err != nil {
			t.Fatal(err)
		}
	}
	ready := js.ReadyPhases()
	if len(ready) != 2 || ready[0] != 1 || ready[1] != 2 {
		t.Fatalf("ready after load: %v", ready)
	}
	// Critical path: load + grad + aggregate (not both grads).
	want := j.Phases[0].MeanDuration + j.Phases[1].MeanDuration + j.Phases[3].MeanDuration
	alt := j.Phases[0].MeanDuration + j.Phases[2].MeanDuration + j.Phases[3].MeanDuration
	if alt > want {
		want = alt
	}
	if got := j.CriticalPathLength(0); got != want {
		t.Fatalf("critical path: %v, want %v", got, want)
	}
}
