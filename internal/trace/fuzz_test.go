package trace

// Fuzzing for the decode surfaces a replay crosses: the per-job strict
// decoder (DecodeJob — also the service's POST body format), the
// streamed framing (Stream.Next over arbitrary bytes), and the replay
// harness property that whatever a stream yields, the online engine's
// InjectJob either rejects it (duplicate ID) or clamps its arrival
// forward — torn frames, duplicate IDs, and out-of-order arrivals must
// all die at a typed error, never a panic or a rewritten history.

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"dollymp/internal/cluster"
	"dollymp/internal/core"
	"dollymp/internal/resources"
	"dollymp/internal/sim"
	"dollymp/internal/workload"
)

// fuzzSeedStream builds a small valid stream to seed the corpus.
func fuzzSeedStream(tb testing.TB, n int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	if err := DefaultGoogleLike(n, 2, 3).Emit(w.Append); err != nil {
		tb.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzStreamNext drives the frame decoder over arbitrary bytes: it must
// never panic, every error must be typed or a clean EOF, offsets must
// be monotone, and every job it does yield must validate.
func FuzzStreamNext(f *testing.F) {
	valid := fuzzSeedStream(f, 4)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])              // torn payload
	f.Add(valid[:streamHeaderLen+5])         // torn frame header
	f.Add(valid[:streamHeaderLen])           // header only
	f.Add([]byte("dollytrc"))                // magic, no version
	f.Add([]byte(`{"version":1,"jobs":[]}`)) // JSON envelope, wrong format
	flipped := append([]byte(nil), valid...)
	flipped[streamHeaderLen+10] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		prevOff := s.Offset()
		for {
			j, err := s.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("untyped stream error: %v", err)
				}
				if ce.Offset < int64(streamHeaderLen) || ce.Offset > int64(len(data)) {
					t.Fatalf("corrupt offset %d outside stream of %d bytes", ce.Offset, len(data))
				}
				return
			}
			if err := j.Validate(); err != nil {
				t.Fatalf("stream yielded an invalid job: %v", err)
			}
			if s.Offset() <= prevOff {
				t.Fatalf("offset did not advance: %d -> %d", prevOff, s.Offset())
			}
			prevOff = s.Offset()
		}
	})
}

// FuzzDecodeJob drives the strict single-job decoder over arbitrary
// bytes: no panics, and success implies a valid job.
func FuzzDecodeJob(f *testing.F) {
	var buf bytes.Buffer
	for _, j := range DefaultGoogleLike(3, 2, 9).Generate() {
		buf.Reset()
		if err := Write(&buf, []*workload.Job{j}); err != nil {
			f.Fatal(err)
		}
	}
	f.Add([]byte(`{"ID":1,"Name":"x","App":"a","Arrival":0,"Phases":[{"Name":"p","Tasks":1,"Demand":{"CPUMilli":100,"MemMiB":10},"MeanDuration":2,"SDDuration":0,"Parents":null}]}`))
	f.Add([]byte(`{"ID":1`))
	f.Add([]byte(`null`))
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := DecodeJob(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := j.Validate(); err != nil {
			t.Fatalf("DecodeJob returned an invalid job: %v", err)
		}
	})
}

// FuzzStreamReplay feeds whatever a (possibly corrupt) stream yields
// into an online engine the way the replay path does: duplicate IDs
// must be rejected, and every accepted arrival must be clamped to the
// current clock — a stream can never rewrite engine history, only fail.
func FuzzStreamReplay(f *testing.F) {
	valid := fuzzSeedStream(f, 6)
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	// Duplicate IDs: append the stream's own frames after the header.
	dup := append([]byte(nil), valid...)
	dup = append(dup, valid[streamHeaderLen:]...)
	f.Add(dup)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		scheduler, err := core.New(core.WithClones(0))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sim.New(sim.Config{
			Cluster:       cluster.Uniform(2, resources.Cores(64, 128)),
			Scheduler:     scheduler,
			Seed:          1,
			Online:        true,
			Deterministic: true,
			MaxSlots:      1 << 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[workload.JobID]bool)
		injected := 0
		for injected < 64 {
			j, err := s.Next()
			if err != nil {
				break // EOF or corruption: replay stops either way
			}
			clock := eng.Clock()
			arr, err := eng.InjectJob(j)
			if seen[j.ID] {
				if err == nil {
					t.Fatalf("duplicate job ID %d accepted", j.ID)
				}
				continue
			}
			if err != nil {
				t.Fatalf("valid job %d rejected: %v", j.ID, err)
			}
			seen[j.ID] = true
			injected++
			if arr < clock {
				t.Fatalf("job %d admitted into the past: arrival %d < clock %d", j.ID, arr, clock)
			}
			// Interleave stepping so clamping against a moving clock is
			// exercised, as in a real replay.
			if injected%2 == 0 {
				if _, err := eng.Step(); err != nil {
					t.Fatalf("step: %v", err)
				}
			}
		}
	})
}
