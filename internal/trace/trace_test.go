package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dollymp/internal/stats"
	"dollymp/internal/workload"
)

func TestWordCountShape(t *testing.T) {
	j := WordCount(1, 100, 10, stats.NewRNG(1))
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(j.Phases) != 2 {
		t.Fatalf("phases: %d", len(j.Phases))
	}
	if j.Phases[0].Name != "map" || j.Phases[1].Name != "reduce" {
		t.Fatal("phase names")
	}
	if j.Phases[0].Tasks != 80 { // 10 GB / 128 MB
		t.Errorf("map tasks: %d", j.Phases[0].Tasks)
	}
	if j.Phases[1].Tasks != 20 {
		t.Errorf("reduce tasks: %d", j.Phases[1].Tasks)
	}
	if j.Arrival != 100 || j.App != "wordcount" {
		t.Error("metadata")
	}
	// Tiny input still yields at least one task.
	small := WordCount(2, 0, 0.01, stats.NewRNG(2))
	if small.Phases[0].Tasks < 1 || small.Phases[1].Tasks < 1 {
		t.Error("tiny input must have >=1 task per phase")
	}
}

func TestPageRankShape(t *testing.T) {
	j := PageRank(1, 0, 10, stats.NewRNG(3))
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(j.Phases) != 5 { // init + 3 iters + finalize
		t.Fatalf("phases: %d", len(j.Phases))
	}
	// Sequential chain: each later phase depends on the previous.
	for k := 1; k < len(j.Phases); k++ {
		if len(j.Phases[k].Parents) != 1 || int(j.Phases[k].Parents[0]) != k-1 {
			t.Fatalf("phase %d parents: %v", k, j.Phases[k].Parents)
		}
	}
}

func TestMixedDeploymentComposition(t *testing.T) {
	jobs := MixedDeployment(100, Arrival{Kind: FixedInterval, MeanGap: 40}, 7)
	if len(jobs) != 100 {
		t.Fatalf("jobs: %d", len(jobs))
	}
	wc, pr := 0, 0
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		switch j.App {
		case "wordcount":
			wc++
		case "pagerank":
			pr++
		default:
			t.Fatalf("unknown app %q", j.App)
		}
	}
	if wc != 50 || pr != 50 {
		t.Errorf("composition: %d wc, %d pr", wc, pr)
	}
	// Fixed-interval arrivals.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival-jobs[i-1].Arrival != 40 {
			t.Fatalf("gap at %d: %d", i, jobs[i].Arrival-jobs[i-1].Arrival)
		}
	}
	// Determinism.
	again := MixedDeployment(100, Arrival{Kind: FixedInterval, MeanGap: 40}, 7)
	for i := range jobs {
		if jobs[i].Phases[0].MeanDuration != again[i].Phases[0].MeanDuration {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestHomogeneous(t *testing.T) {
	jobs, err := Homogeneous("pagerank", 20, 10, Arrival{Kind: FixedInterval, MeanGap: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 20 {
		t.Fatalf("jobs: %d", len(jobs))
	}
	for _, j := range jobs {
		if j.App != "pagerank" {
			t.Fatal("app")
		}
	}
	if _, err := Homogeneous("sort", 5, 1, Arrival{}, 1); err == nil {
		t.Error("unknown app should error")
	}
}

func TestPoissonArrivalsIncrease(t *testing.T) {
	jobs, err := Homogeneous("wordcount", 50, 10, Arrival{Kind: Poisson, MeanGap: 10}, 11)
	if err != nil {
		t.Fatal(err)
	}
	var gaps []float64
	for i := 1; i < len(jobs); i++ {
		g := jobs[i].Arrival - jobs[i-1].Arrival
		if g < 1 {
			t.Fatalf("non-positive gap %d", g)
		}
		gaps = append(gaps, float64(g))
	}
	m := stats.Mean(gaps)
	if m < 4 || m > 20 {
		t.Errorf("poisson mean gap: %v, want ~10", m)
	}
}

func TestGoogleLikeStatistics(t *testing.T) {
	g := DefaultGoogleLike(400, 10, 13)
	jobs := g.Generate()
	if len(jobs) != 400 {
		t.Fatalf("jobs: %d", len(jobs))
	}
	heavyPhases, totalPhases := 0, 0
	small := 0
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.TotalTasks() <= 20 {
			small++
		}
		for _, p := range j.Phases {
			totalPhases++
			if p.SDDuration >= p.MeanDuration {
				heavyPhases++
			}
		}
	}
	frac := float64(heavyPhases) / float64(totalPhases)
	if math.Abs(frac-0.70) > 0.08 {
		t.Errorf("straggler-phase fraction: %v, want ~0.70", frac)
	}
	if float64(small)/float64(len(jobs)) < 0.6 {
		t.Errorf("job size distribution not heavy-tailed: %d/%d small", small, len(jobs))
	}
	// Determinism.
	again := DefaultGoogleLike(400, 10, 13).Generate()
	for i := range jobs {
		if jobs[i].TotalTasks() != again[i].TotalTasks() {
			t.Fatal("google-like trace not deterministic")
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	jobs := MixedDeployment(10, Arrival{Kind: FixedInterval, MeanGap: 5}, 3)
	var buf bytes.Buffer
	if err := Write(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("round trip count: %d", len(got))
	}
	for i := range jobs {
		if got[i].ID != jobs[i].ID || got[i].Arrival != jobs[i].Arrival ||
			len(got[i].Phases) != len(jobs[i].Phases) {
			t.Fatalf("job %d mismatch", i)
		}
		for k := range jobs[i].Phases {
			if got[i].Phases[k].Tasks != jobs[i].Phases[k].Tasks ||
				got[i].Phases[k].Demand != jobs[i].Phases[k].Demand ||
				got[i].Phases[k].MeanDuration != jobs[i].Phases[k].MeanDuration {
				t.Fatalf("job %d phase %d mismatch", i, k)
			}
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage should error")
	}
	if _, err := Read(strings.NewReader(`{"version": 99, "jobs": []}`)); err == nil {
		t.Error("wrong version should error")
	}
	bad := `{"version": 1, "jobs": [{"ID": 1, "Phases": [{"Name":"p","Tasks":0,"Demand":{"CPUMilli":1,"MemMiB":1},"MeanDuration":1}]}]}`
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("invalid job should error")
	}
}

func TestArrivalUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind should panic")
		}
	}()
	Arrival{Kind: ArrivalKind(99)}.next(0, stats.NewRNG(1))
}

var _ = workload.JobID(0)
