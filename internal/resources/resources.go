// Package resources models the two-dimensional (CPU, memory) resource
// vectors used throughout DollyMP, together with the fit tests and the
// dominant-share computation of Eq. (9)/(15) in the paper.
//
// CPU is measured in milli-cores and memory in MiB so that all arithmetic
// is exact integer arithmetic; the trace generator and cluster builders
// agree on these units.
package resources

import "fmt"

// Vector is a demand or capacity across the two resource dimensions the
// paper schedules: CPU and memory. The zero Vector is an empty demand.
type Vector struct {
	// CPUMilli is CPU in milli-cores (1000 = one core).
	CPUMilli int64
	// MemMiB is memory in MiB.
	MemMiB int64
}

// Vec is shorthand for constructing a Vector.
func Vec(cpuMilli, memMiB int64) Vector {
	return Vector{CPUMilli: cpuMilli, MemMiB: memMiB}
}

// Cores builds a Vector from whole cores and whole GiB, the units the
// paper's cluster description (§6.1) uses.
func Cores(cores, gib int64) Vector {
	return Vector{CPUMilli: cores * 1000, MemMiB: gib * 1024}
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	return Vector{CPUMilli: v.CPUMilli + w.CPUMilli, MemMiB: v.MemMiB + w.MemMiB}
}

// Sub returns v - w. The result may have negative components; callers that
// care should check Fits first.
func (v Vector) Sub(w Vector) Vector {
	return Vector{CPUMilli: v.CPUMilli - w.CPUMilli, MemMiB: v.MemMiB - w.MemMiB}
}

// Scale returns v multiplied component-wise by k.
func (v Vector) Scale(k int64) Vector {
	return Vector{CPUMilli: v.CPUMilli * k, MemMiB: v.MemMiB * k}
}

// Fits reports whether a demand v can be satisfied by a free capacity w,
// i.e. v <= w component-wise.
func (v Vector) Fits(w Vector) bool {
	return v.CPUMilli <= w.CPUMilli && v.MemMiB <= w.MemMiB
}

// IsZero reports whether both components are zero.
func (v Vector) IsZero() bool { return v.CPUMilli == 0 && v.MemMiB == 0 }

// IsValid reports whether both components are non-negative.
func (v Vector) IsValid() bool { return v.CPUMilli >= 0 && v.MemMiB >= 0 }

// Dot is the inner product used by Tetris-style alignment scores: the
// demand vector against the remaining capacity of a server, each dimension
// normalized by the given total cluster capacity so that CPU and memory
// are commensurable. total must have positive components.
func (v Vector) Dot(w, total Vector) float64 {
	return float64(v.CPUMilli)*float64(w.CPUMilli)/(float64(total.CPUMilli)*float64(total.CPUMilli)) +
		float64(v.MemMiB)*float64(w.MemMiB)/(float64(total.MemMiB)*float64(total.MemMiB))
}

// DominantShare implements Eq. (9)/(15): the maximum, across dimensions,
// of the demand divided by the total cluster capacity. total must have
// positive components.
func (v Vector) DominantShare(total Vector) float64 {
	c := float64(v.CPUMilli) / float64(total.CPUMilli)
	m := float64(v.MemMiB) / float64(total.MemMiB)
	if c >= m {
		return c
	}
	return m
}

// Max returns the component-wise maximum of v and w.
func (v Vector) Max(w Vector) Vector {
	out := v
	if w.CPUMilli > out.CPUMilli {
		out.CPUMilli = w.CPUMilli
	}
	if w.MemMiB > out.MemMiB {
		out.MemMiB = w.MemMiB
	}
	return out
}

// Min returns the component-wise minimum of v and w.
func (v Vector) Min(w Vector) Vector {
	out := v
	if w.CPUMilli < out.CPUMilli {
		out.CPUMilli = w.CPUMilli
	}
	if w.MemMiB < out.MemMiB {
		out.MemMiB = w.MemMiB
	}
	return out
}

// String formats the vector in human units.
func (v Vector) String() string {
	return fmt.Sprintf("%.2fc/%.1fGiB", float64(v.CPUMilli)/1000, float64(v.MemMiB)/1024)
}

// Usage accumulates resource-time products: the per-job "resource usage"
// metric of §6.3.1 (sum across normalized CPU and memory multiplied by
// task duration, summed over all copies of all tasks).
type Usage struct {
	CPUMilliSlots int64 // milli-core × slots
	MemMiBSlots   int64 // MiB × slots
}

// AddFor charges demand v held for the given number of slots.
func (u *Usage) AddFor(v Vector, slots int64) {
	u.CPUMilliSlots += v.CPUMilli * slots
	u.MemMiBSlots += v.MemMiB * slots
}

// Merge adds another usage record into u.
func (u *Usage) Merge(w Usage) {
	u.CPUMilliSlots += w.CPUMilliSlots
	u.MemMiBSlots += w.MemMiBSlots
}

// Normalized returns the usage with each dimension divided by the cluster
// total, i.e. in units of "fraction of cluster × slots", summed over the
// two dimensions as in Fig. 8b.
func (u Usage) Normalized(total Vector) float64 {
	return float64(u.CPUMilliSlots)/float64(total.CPUMilli) +
		float64(u.MemMiBSlots)/float64(total.MemMiB)
}
