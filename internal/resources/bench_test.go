package resources

import "testing"

func BenchmarkDot(b *testing.B) {
	d := Cores(2, 4)
	free := Cores(6, 12)
	total := Cores(328, 648)
	for i := 0; i < b.N; i++ {
		if d.Dot(free, total) <= 0 {
			b.Fatal("bad dot")
		}
	}
}

func BenchmarkDominantShare(b *testing.B) {
	d := Cores(2, 4)
	total := Cores(328, 648)
	for i := 0; i < b.N; i++ {
		if d.DominantShare(total) <= 0 {
			b.Fatal("bad share")
		}
	}
}

func BenchmarkFits(b *testing.B) {
	d := Cores(2, 4)
	free := Cores(6, 12)
	for i := 0; i < b.N; i++ {
		if !d.Fits(free) {
			b.Fatal("should fit")
		}
	}
}
