package resources

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecConstructors(t *testing.T) {
	v := Vec(1500, 2048)
	if v.CPUMilli != 1500 || v.MemMiB != 2048 {
		t.Fatalf("Vec: got %+v", v)
	}
	c := Cores(8, 16)
	if c.CPUMilli != 8000 || c.MemMiB != 16384 {
		t.Fatalf("Cores: got %+v", c)
	}
}

func TestAddSubScale(t *testing.T) {
	a := Vec(1000, 512)
	b := Vec(250, 128)
	if got := a.Add(b); got != Vec(1250, 640) {
		t.Errorf("Add: got %v", got)
	}
	if got := a.Sub(b); got != Vec(750, 384) {
		t.Errorf("Sub: got %v", got)
	}
	if got := b.Scale(3); got != Vec(750, 384) {
		t.Errorf("Scale: got %v", got)
	}
}

func TestFits(t *testing.T) {
	cases := []struct {
		d, c Vector
		want bool
	}{
		{Vec(100, 100), Vec(100, 100), true},
		{Vec(101, 100), Vec(100, 100), false},
		{Vec(100, 101), Vec(100, 100), false},
		{Vec(0, 0), Vec(0, 0), true},
		{Vec(1, 1), Vec(1000, 1), true},
	}
	for _, c := range cases {
		if got := c.d.Fits(c.c); got != c.want {
			t.Errorf("%v fits %v: got %v, want %v", c.d, c.c, got, c.want)
		}
	}
}

func TestIsZeroIsValid(t *testing.T) {
	if !Vec(0, 0).IsZero() || Vec(1, 0).IsZero() || Vec(0, 1).IsZero() {
		t.Error("IsZero wrong")
	}
	if !Vec(0, 0).IsValid() || Vec(-1, 0).IsValid() || Vec(0, -1).IsValid() {
		t.Error("IsValid wrong")
	}
}

func TestDominantShare(t *testing.T) {
	total := Cores(100, 200) // 100000 milli, 204800 MiB
	// CPU-dominant task.
	d := Cores(10, 10)
	got := d.DominantShare(total)
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("cpu dominant: got %v", got)
	}
	// Memory-dominant task.
	d = Cores(1, 100)
	got = d.DominantShare(total)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mem dominant: got %v", got)
	}
}

func TestDotSymmetryAndPositivity(t *testing.T) {
	total := Cores(328, 648)
	a := Cores(2, 4)
	b := Cores(6, 8)
	if math.Abs(a.Dot(b, total)-b.Dot(a, total)) > 1e-15 {
		t.Error("Dot not symmetric")
	}
	if a.Dot(b, total) <= 0 {
		t.Error("Dot of positive vectors must be positive")
	}
}

func TestMaxMin(t *testing.T) {
	a, b := Vec(5, 1), Vec(3, 9)
	if got := a.Max(b); got != Vec(5, 9) {
		t.Errorf("Max: got %v", got)
	}
	if got := a.Min(b); got != Vec(3, 1) {
		t.Errorf("Min: got %v", got)
	}
}

func TestUsage(t *testing.T) {
	var u Usage
	u.AddFor(Vec(1000, 1024), 10)
	u.AddFor(Vec(500, 512), 4)
	if u.CPUMilliSlots != 12000 || u.MemMiBSlots != 12288 {
		t.Fatalf("usage: %+v", u)
	}
	var v Usage
	v.AddFor(Vec(1, 1), 1)
	u.Merge(v)
	if u.CPUMilliSlots != 12001 || u.MemMiBSlots != 12289 {
		t.Fatalf("merge: %+v", u)
	}
	n := Usage{CPUMilliSlots: 500, MemMiBSlots: 1024}.Normalized(Vec(1000, 2048))
	if math.Abs(n-1.0) > 1e-12 {
		t.Errorf("normalized: got %v", n)
	}
}

func TestString(t *testing.T) {
	if s := Cores(8, 16).String(); s != "8.00c/16.0GiB" {
		t.Errorf("String: got %q", s)
	}
}

// Property: Add is commutative and associative; Sub inverts Add.
func TestAddProperties(t *testing.T) {
	small := func(v Vector) Vector {
		return Vec(v.CPUMilli%1_000_000, v.MemMiB%1_000_000)
	}
	comm := func(a, b Vector) bool {
		a, b = small(a), small(b)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c Vector) bool {
		a, b, c = small(a), small(b), small(c)
		return a.Add(b).Add(c) == a.Add(b.Add(c))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	inv := func(a, b Vector) bool {
		a, b = small(a), small(b)
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(inv, nil); err != nil {
		t.Error(err)
	}
}

// Property: Fits is a partial order (reflexive, antisymmetric on valid
// vectors, transitive).
func TestFitsProperties(t *testing.T) {
	refl := func(a Vector) bool { return a.Fits(a) }
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
	trans := func(a, b, c Vector) bool {
		if a.Fits(b) && b.Fits(c) {
			return a.Fits(c)
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Error(err)
	}
	antisym := func(a, b Vector) bool {
		if a.Fits(b) && b.Fits(a) {
			return a == b
		}
		return true
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
}

// Property: DominantShare scales linearly with demand.
func TestDominantShareScaling(t *testing.T) {
	total := Cores(1000, 2000)
	f := func(c, m uint16, k uint8) bool {
		if k == 0 {
			return true
		}
		v := Vec(int64(c), int64(m))
		lhs := v.Scale(int64(k)).DominantShare(total)
		rhs := float64(k) * v.DominantShare(total)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
