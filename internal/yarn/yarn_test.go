package yarn

import (
	"testing"

	"dollymp/internal/cluster"
	"dollymp/internal/core"
	"dollymp/internal/resources"
	"dollymp/internal/sched"
	"dollymp/internal/sched/schedtest"
	"dollymp/internal/sim"
	"dollymp/internal/workload"
)

func twoRackFleet(t *testing.T, perRack int) *cluster.Cluster {
	t.Helper()
	specs := make([]cluster.Spec, 0, 2*perRack)
	for rack := 0; rack < 2; rack++ {
		for i := 0; i < perRack; i++ {
			specs = append(specs, cluster.Spec{
				Name:     "srv",
				Capacity: resources.Cores(4, 8),
				Speed:    1,
				Rack:     rack,
			})
		}
	}
	c, err := cluster.New(specs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaults(t *testing.T) {
	s := New()
	if s.Name() != "yarn-dollymp2" {
		t.Errorf("name: %s", s.Name())
	}
	z := &Scheduler{}
	if z.r() != 1.5 || z.delta() != 0.3 {
		t.Errorf("zero-value params: %v %v", z.r(), z.delta())
	}
	if (&Scheduler{MaxClones: -1}).maxClones() != 0 {
		t.Error("negative clones should clamp to 0")
	}
}

func TestRootTaskBindsToInputRack(t *testing.T) {
	fleet := twoRackFleet(t, 2)
	ctx := schedtest.New(fleet)
	ctx.MustAddJob(workload.SingleTask(1, 0, resources.Cores(1, 1), 10, 0))

	s := New()
	ps := s.Schedule(ctx)
	if len(ps) == 0 {
		t.Fatal("no placements")
	}
	want := workload.InputRack(workload.TaskRef{Job: 1}, 2)
	if got := fleet.Server(ps[0].Server).Rack; got != want {
		t.Fatalf("bound to rack %d, want input rack %d", got, want)
	}
}

func TestDownstreamTaskFollowsUpstreamOutputs(t *testing.T) {
	fleet := twoRackFleet(t, 2)
	ctx := schedtest.New(fleet)
	js := ctx.MustAddJob(workload.Chain(1, "mr", "t", 0, []workload.Phase{
		{Name: "map", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: 5},
		{Name: "reduce", Tasks: 1, Demand: resources.Cores(1, 1), MeanDuration: 5},
	}))
	if err := js.MarkDone(0, 0); err != nil {
		t.Fatal(err)
	}
	// The map output lives on rack 1.
	ctx.OutputRacks[schedtest.PhaseKey{Job: 1, Phase: 0}] = 1

	ps := New().Schedule(ctx)
	if len(ps) != 1 {
		t.Fatalf("placements: %+v", ps)
	}
	if got := fleet.Server(ps[0].Server).Rack; got != 1 {
		t.Fatalf("reduce bound to rack %d, want 1", got)
	}
}

func TestFallsBackOffRack(t *testing.T) {
	// The preferred rack is full: the task must still be placed.
	fleet := twoRackFleet(t, 1)
	ctx := schedtest.New(fleet)
	ctx.MustAddJob(workload.SingleTask(1, 0, resources.Cores(1, 1), 10, 0))
	want := workload.InputRack(workload.TaskRef{Job: 1}, 2)
	// Fill the preferred rack.
	for _, srv := range fleet.Servers() {
		if srv.Rack == want {
			if err := fleet.Allocate(srv.ID, srv.Capacity); err != nil {
				t.Fatal(err)
			}
		}
	}
	ps := New().Schedule(ctx)
	if len(ps) != 1 {
		t.Fatalf("placements: %+v", ps)
	}
	if got := fleet.Server(ps[0].Server).Rack; got == want {
		t.Fatalf("preferred rack was full, got rack %d anyway", got)
	}
}

func TestClonesFollowLocality(t *testing.T) {
	fleet := twoRackFleet(t, 2)
	ctx := schedtest.New(fleet)
	ctx.MustAddJob(workload.SingleTask(1, 0, resources.Cores(1, 1), 10, 5))
	ref := workload.TaskRef{Job: 1}

	s := New()
	// First round places the original on the input rack.
	ps := s.Schedule(ctx)
	if err := ctx.Apply(ps); err != nil {
		t.Fatal(err)
	}
	// Second round: nothing pending, idle resources → clones; they too
	// must land on the preferred rack while it has room.
	ps = s.Schedule(ctx)
	if len(ps) == 0 {
		t.Fatal("no clones granted")
	}
	want := workload.InputRack(ref, 2)
	for _, p := range ps {
		if p.Ref != ref {
			t.Fatalf("unexpected placement %+v", p)
		}
		if got := fleet.Server(p.Server).Rack; got != want {
			t.Fatalf("clone on rack %d, want %d", got, want)
		}
	}
}

func TestEndToEndCompletesAndMatchesFlat(t *testing.T) {
	// Without a transfer penalty the two-level scheduler should be in
	// the same performance ballpark as flat DollyMP².
	jobs := make([]*workload.Job, 30)
	for i := range jobs {
		jobs[i] = workload.Chain(workload.JobID(i), "mr", "wordcount", int64(i*3), []workload.Phase{
			{Name: "map", Tasks: 6, Demand: resources.Cores(1, 2), MeanDuration: 8, SDDuration: 6},
			{Name: "reduce", Tasks: 2, Demand: resources.Cores(2, 4), MeanDuration: 5, SDDuration: 3},
		})
	}
	runOne := func(sch sched.Scheduler) int64 {
		e, err := sim.New(sim.Config{
			Cluster: cluster.Testbed30(), Jobs: jobs, Scheduler: sch, Seed: 5, Paranoid: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Jobs) != len(jobs) {
			t.Fatalf("%s completed %d/%d", sch.Name(), len(res.Jobs), len(jobs))
		}
		return res.TotalFlowtime()
	}
	yarnFlow := runOne(New())
	flatFlow := runOne(core.MustNew())
	ratio := float64(yarnFlow) / float64(flatFlow)
	if ratio > 1.5 || ratio < 0.5 {
		t.Fatalf("two-level flowtime %d too far from flat %d", yarnFlow, flatFlow)
	}
}

func TestLocalityBeatsFlatUnderTransferPenalty(t *testing.T) {
	// With a significant cross-rack penalty, the AM's locality binding
	// must beat rack-oblivious flat DollyMP.
	jobs := make([]*workload.Job, 24)
	for i := range jobs {
		jobs[i] = workload.Chain(workload.JobID(i), "mr", "wordcount", int64(i*4), []workload.Phase{
			{Name: "map", Tasks: 6, Demand: resources.Cores(1, 2), MeanDuration: 6, SDDuration: 2},
			{Name: "reduce", Tasks: 2, Demand: resources.Cores(2, 4), MeanDuration: 4, SDDuration: 1},
		})
	}
	runOne := func(sch sched.Scheduler) int64 {
		e, err := sim.New(sim.Config{
			Cluster: cluster.Testbed30(), Jobs: jobs, Scheduler: sch, Seed: 7,
			TransferPenalty: 4, Paranoid: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalFlowtime()
	}
	yarnFlow := runOne(New())
	flatFlow := runOne(core.MustNew())
	if yarnFlow >= flatFlow {
		t.Fatalf("locality binding should win under transfer penalty: yarn %d vs flat %d",
			yarnFlow, flatFlow)
	}
}
