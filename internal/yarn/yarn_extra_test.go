package yarn

import (
	"testing"

	"dollymp/internal/cluster"
	"dollymp/internal/resources"
	"dollymp/internal/sched"
	"dollymp/internal/sched/schedtest"
	"dollymp/internal/workload"
)

func TestPriorityOrderAcrossQueues(t *testing.T) {
	// A small fast job and a big slow job on a one-task-at-a-time
	// cluster: the RM's knapsack priorities must schedule the small one
	// first regardless of registration order.
	fleet := cluster.Uniform(1, resources.Cores(4, 8))
	ctx := schedtest.New(fleet)
	ctx.MustAddJob(workload.SingleTask(1, 0, resources.Cores(4, 8), 60, 0)) // big
	ctx.MustAddJob(workload.SingleTask(2, 0, resources.Cores(1, 1), 2, 0))  // small

	ps := New().Schedule(ctx)
	if len(ps) == 0 || ps[0].Ref.Job != 2 {
		t.Fatalf("small job should lead: %+v", ps)
	}
}

func TestCloneBudgetRespected(t *testing.T) {
	fleet := cluster.Uniform(4, resources.Cores(8, 16))
	ctx := schedtest.New(fleet)
	ctx.MustAddJob(workload.SingleTask(1, 0, resources.Cores(1, 1), 10, 8))
	s := New()
	s.Delta = 1e-9 // effectively zero budget

	// Place the original.
	ps := s.Schedule(ctx)
	if len(ps) != 1 {
		t.Fatalf("first round: %+v", ps)
	}
	if err := ctx.Apply(ps); err != nil {
		t.Fatal(err)
	}
	// No clones may follow.
	if more := s.Schedule(ctx); len(more) != 0 {
		t.Fatalf("δ≈0 must forbid clones: %+v", more)
	}
}

func TestMaxClonesZero(t *testing.T) {
	fleet := cluster.Uniform(4, resources.Cores(8, 16))
	ctx := schedtest.New(fleet)
	ctx.MustAddJob(workload.SingleTask(1, 0, resources.Cores(1, 1), 10, 8))
	s := New()
	s.MaxClones = 0
	ps := s.Schedule(ctx)
	if err := ctx.Apply(ps); err != nil {
		t.Fatal(err)
	}
	if more := s.Schedule(ctx); len(more) != 0 {
		t.Fatalf("MaxClones=0 must not clone: %+v", more)
	}
}

func TestRackIndexAndCount(t *testing.T) {
	fleet := twoRackFleet(t, 3)
	idx := rackIndex(fleet)
	if len(idx) != 2 || len(idx[0]) != 3 || len(idx[1]) != 3 {
		t.Fatalf("rack index: %v", idx)
	}
	if got := rackCount(idx); got != 2 {
		t.Fatalf("rack count: %d", got)
	}
}

func TestBestFitWithinRespectsTracker(t *testing.T) {
	fleet := twoRackFleet(t, 2)
	ft := sched.NewFitTracker(fleet)
	servers := rackIndex(fleet)[0]
	d := resources.Cores(4, 8) // one full server
	s1, ok := bestFitWithin(ft, fleet, servers, d)
	if !ok {
		t.Fatal("first fit failed")
	}
	ft.Place(s1, d)
	s2, ok := bestFitWithin(ft, fleet, servers, d)
	if !ok || s2 == s1 {
		t.Fatalf("second fit: %v %v", s2, ok)
	}
	ft.Place(s2, d)
	if _, ok := bestFitWithin(ft, fleet, servers, d); ok {
		t.Fatal("rack is full; fit should fail")
	}
}

func TestSingleRackHasNoRootPreference(t *testing.T) {
	fleet := cluster.Uniform(3, resources.Cores(4, 8))
	ctx := schedtest.New(fleet)
	ctx.MustAddJob(workload.SingleTask(1, 0, resources.Cores(1, 1), 5, 0))
	ps := New().Schedule(ctx)
	if len(ps) != 1 {
		t.Fatalf("placements: %+v", ps)
	}
	// With one rack the AM falls back to global best fit; any server is
	// acceptable, the point is it does not error or loop.
}
