// Package yarn reproduces the paper's Hadoop YARN implementation
// architecture (§5.2) as a two-level scheduler:
//
//   - The Resource Manager level runs DollyMP's knapsack priorities
//     (Algorithm 1 over Eqs. 16–17) and decides how many containers each
//     job receives, in priority order — it does not pick tasks.
//   - The Application Master level (one logical AM per job) binds its
//     granted containers to concrete tasks and clones with the §5.2
//     data-locality preference: a task runs on the rack holding its
//     input (the hashed HDFS placement for root phases, the upstream
//     outputs' majority rack otherwise), and cloned copies are placed to
//     "satisfy such preferences" too.
//
// Compared to internal/core (the flat Algorithm 2), this scheduler
// trades a little packing efficiency for locality: with a cross-rack
// TransferPenalty configured in the simulator, the AM binding avoids the
// penalty that rack-oblivious placement pays.
package yarn

import (
	"fmt"
	"sort"

	"dollymp/internal/cluster"
	"dollymp/internal/core"
	"dollymp/internal/resources"
	"dollymp/internal/sched"
	"dollymp/internal/workload"
)

// Scheduler is the two-level DollyMP-on-YARN scheduler.
type Scheduler struct {
	// MaxClones is the per-task clone cap (default 2; the container
	// request encodes it per §5.2).
	MaxClones int
	// R is the variance factor in e = θ + R·σ (default 1.5).
	R float64
	// Delta is the cloning budget fraction (default 0.3).
	Delta float64

	prios map[workload.JobID]int
}

// New builds the scheduler with the paper's defaults.
func New() *Scheduler {
	return &Scheduler{MaxClones: 2, R: 1.5, Delta: 0.3}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return fmt.Sprintf("yarn-dollymp%d", s.maxClones()) }

func (s *Scheduler) maxClones() int {
	if s.MaxClones < 0 {
		return 0
	}
	return s.MaxClones
}

func (s *Scheduler) r() float64 {
	if s.R <= 0 {
		return 1.5
	}
	return s.R
}

func (s *Scheduler) delta() float64 {
	if s.Delta <= 0 {
		return 0.3
	}
	return s.Delta
}

// OnJobArrival implements sched.ArrivalAware: the RM recomputes
// priorities when a new Application Master registers (§5).
func (s *Scheduler) OnJobArrival(ctx sched.Context, _ *workload.JobState) {
	s.recompute(ctx)
}

func (s *Scheduler) recompute(ctx sched.Context) {
	total := ctx.Cluster().Total()
	jobs := ctx.Jobs()
	infos := make([]core.JobInfo, 0, len(jobs))
	for _, js := range jobs {
		maxD := 0.0
		for k := range js.Job.Phases {
			if js.RemainingTasks(workload.PhaseID(k)) == 0 {
				continue
			}
			if d := js.Job.Phases[k].DominantShare(total); d > maxD {
				maxD = d
			}
		}
		infos = append(infos, core.JobInfo{
			ID:       js.Job.ID,
			Volume:   js.UpdatedVolume(total, s.r()),
			Time:     js.UpdatedProcessingTime(s.r()),
			Dominant: maxD,
		})
	}
	s.prios = core.Priorities(infos)
}

// Schedule implements the two-level flow: the RM walks jobs in priority
// order, and for each job the AM binds tasks to servers locality-first.
func (s *Scheduler) Schedule(ctx sched.Context) []sched.Placement {
	jobs := ctx.Jobs()
	if len(jobs) == 0 {
		return nil
	}
	if s.prios == nil {
		s.recompute(ctx)
	}
	for _, js := range jobs {
		if _, ok := s.prios[js.Job.ID]; !ok {
			s.recompute(ctx)
			break
		}
	}

	// Priority order with deterministic tie-break.
	ordered := make([]*workload.JobState, len(jobs))
	copy(ordered, jobs)
	sortJobs(ordered, s.prios)

	ft := sched.NewFitTracker(ctx.Cluster())
	racks := rackIndex(ctx.Cluster())
	var out []sched.Placement

	// New-task pass: each AM binds its pending ready tasks.
	for _, js := range ordered {
		am := &appMaster{js: js, ctx: ctx, racks: racks}
		cur := sched.NewJobCursor(js)
		for {
			pt, ok := cur.Peek()
			if !ok {
				break
			}
			srv, ok := am.bind(ft, pt.Ref, pt.Demand)
			if !ok {
				break // this job's head demand fits nowhere right now
			}
			ft.Place(srv, pt.Demand)
			out = append(out, sched.Placement{Ref: pt.Ref, Server: srv})
			cur.Advance()
		}
	}

	// Clone pass: leftover containers go to running tasks of jobs whose
	// pending tasks are all placed, priority order, locality preferred,
	// within the δ budget.
	out = append(out, s.clonePass(ctx, ft, ordered, racks, out)...)
	return out
}

// clonePass tops running tasks up to 1+MaxClones copies.
func (s *Scheduler) clonePass(
	ctx sched.Context,
	ft *sched.FitTracker,
	ordered []*workload.JobState,
	racks map[int][]*cluster.Server,
	placed []sched.Placement,
) []sched.Placement {
	if s.maxClones() == 0 {
		return nil
	}
	total := ctx.Cluster().Total()
	budget := resources.Vec(
		int64(s.delta()*float64(total.CPUMilli)),
		int64(s.delta()*float64(total.MemMiB)),
	)
	cloneUse := ctx.CloneUsage()
	// Tasks just placed in this batch are not yet visible in
	// ctx.Copies; count them.
	pendingCopies := make(map[workload.TaskRef]int, len(placed))
	for _, p := range placed {
		pendingCopies[p.Ref]++
	}

	var out []sched.Placement
	for pass := 1; pass <= s.maxClones(); pass++ {
		for _, js := range ordered {
			if _, ok := sched.FirstReadyPendingTask(js); ok {
				continue // unplaced work waits; no clones for this job
			}
			am := &appMaster{js: js, ctx: ctx, racks: racks}
			for _, k := range js.ReadyPhases() {
				if js.RunningCount(k) == 0 {
					continue
				}
				demand := js.Job.Phases[k].Demand
				for _, l := range js.RunningTasks(k) {
					ref := workload.TaskRef{Job: js.Job.ID, Phase: k, Index: l}
					copies := len(ctx.Copies(ref)) + pendingCopies[ref]
					if copies == 0 || copies != pass {
						continue
					}
					next := cloneUse.Add(demand)
					if !next.Fits(budget) {
						continue
					}
					srv, ok := am.bind(ft, ref, demand)
					if !ok {
						continue
					}
					ft.Place(srv, demand)
					cloneUse = next
					pendingCopies[ref]++
					out = append(out, sched.Placement{Ref: ref, Server: srv})
				}
			}
		}
	}
	return out
}

// appMaster is the per-job second-level scheduler: it knows where the
// job's data lives and binds tasks to servers accordingly.
type appMaster struct {
	js    *workload.JobState
	ctx   sched.Context
	racks map[int][]*cluster.Server
}

// bind picks a server for one task copy: best fit on the preferred rack
// when possible, best fit anywhere otherwise.
func (am *appMaster) bind(ft *sched.FitTracker, ref workload.TaskRef, demand resources.Vector) (cluster.ServerID, bool) {
	if rack, ok := am.preferredRack(ref); ok {
		if srv, ok := bestFitWithin(ft, am.ctx.Cluster(), am.racks[rack], demand); ok {
			return srv, true
		}
	}
	return ft.BestFit(demand)
}

// preferredRack is the §5.2 data-locality preference.
func (am *appMaster) preferredRack(ref workload.TaskRef) (int, bool) {
	parents := am.js.Job.Phases[ref.Phase].Parents
	if len(parents) == 0 {
		if len(am.racks) <= 1 {
			return 0, false
		}
		return workload.InputRack(ref, rackCount(am.racks)), true
	}
	// The first parent with completed outputs decides; parents of a
	// ready phase are all complete, so this is deterministic.
	for _, par := range parents {
		if rack, ok := am.ctx.PhaseOutputRack(am.js.Job.ID, par); ok {
			return rack, true
		}
	}
	return 0, false
}

func rackCount(racks map[int][]*cluster.Server) int {
	max := 0
	for r := range racks {
		if r+1 > max {
			max = r + 1
		}
	}
	return max
}

func rackIndex(c *cluster.Cluster) map[int][]*cluster.Server {
	idx := make(map[int][]*cluster.Server)
	for _, s := range c.Servers() {
		idx[s.Rack] = append(idx[s.Rack], s)
	}
	return idx
}

func bestFitWithin(ft *sched.FitTracker, c *cluster.Cluster, servers []*cluster.Server, demand resources.Vector) (cluster.ServerID, bool) {
	total := c.Total()
	best := cluster.ServerID(-1)
	bestScore := -1.0
	for _, s := range servers {
		free := ft.Free(s.ID)
		if !demand.Fits(free) {
			continue
		}
		score := demand.Dot(free, total)
		if score > bestScore {
			bestScore = score
			best = s.ID
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func sortJobs(jobs []*workload.JobState, prios map[workload.JobID]int) {
	sort.SliceStable(jobs, func(i, j int) bool {
		pa, pb := prios[jobs[i].Job.ID], prios[jobs[j].Job.ID]
		if pa != pb {
			return pa < pb
		}
		return jobs[i].Job.ID < jobs[j].Job.ID
	})
}
