package admission

import (
	"context"
	"sync"
	"time"

	"dollymp/internal/workload"
)

// WeightedFairConfig parameterizes a WeightedFair policy.
type WeightedFairConfig struct {
	// Weights maps tenant name to relative share. Tenants absent from
	// the map get DefaultWeight. Nil is a valid empty map.
	Weights map[string]float64
	// DefaultWeight applies to tenants without an explicit weight;
	// values <= 0 become 1.
	DefaultWeight float64
	// Burst is the per-unit-weight slack: a tenant may run up to
	// Burst/weight admissions ahead of the fair frontier before being
	// denied. Values below 1 are raised to 1 (a tenant must always be
	// able to take its first job). Larger bursts trade short-term skew
	// for fewer denials under bursty arrivals.
	Burst float64
	// Gate is the pressure threshold as a fraction of queue capacity:
	// fairness is enforced only while QueueDepth >= Gate*QueueCap.
	// Zero means the default 0.5; negative means "always enforce"
	// regardless of pressure. When a snapshot reports unknown capacity
	// (QueueCap == 0, e.g. a stateless gateway), fairness is always
	// enforced — the edge cannot tell when pressure has lifted.
	Gate float64
	// MaxTenants bounds the per-tenant state table; 0 means the default
	// 4096. When the table is full, the least-recently-decided tenants
	// without explicit weights are pruned.
	MaxTenants int
	// RetryAfter is the hint attached to denials; 0 means the default
	// 50ms. Fair-share denials have no exact refill time (the frontier
	// moves when OTHER tenants admit), so this is a pacing hint, not a
	// promise.
	RetryAfter time.Duration
}

const (
	defaultFairGate       = 0.5
	defaultFairMaxTenants = 4096
	defaultFairRetryAfter = 50 * time.Millisecond
	// activityWindow is the number of global admission decisions after
	// which a silent tenant stops anchoring the fair frontier. Counted
	// in decisions, not wall time, so behavior is deterministic.
	activityWindow = 256
)

type fairTenant struct {
	weight   float64
	explicit bool
	vt       float64 // virtual time: admitted work / weight
	lastSeen int64   // global decision count at last Admit call
	admitted int64
	denied   int64
}

// WeightedFair admits jobs in proportion to per-tenant weights while
// the deployment is under pressure, and admits everything when it is
// not. It is a virtual-time weighted fair queue over admission slots:
// each tenant carries vt = admitted/weight, and a job is admitted iff
// its tenant's vt is within Burst/weight of the frontier — the minimum
// vt among the other recently-active tenants. A heavier weight means a
// smaller vt step per admit, so a weight-4 tenant takes four slots for
// every one a weight-1 competitor takes before both touch the same
// frontier. Three guards keep vt honest: a tenant entering (or
// returning after the activity window) starts AT the frontier, so idle
// time earns no credit; ungated admits cap vt one burst past the
// frontier, so running ahead while the queue was empty banks only a
// bounded debt; and a tenant silent for activityWindow decisions stops
// anchoring the frontier, so a ghost cannot throttle the living.
type WeightedFair struct {
	defaultWeight float64
	burst         float64
	gate          float64
	maxTenants    int
	retryAfter    time.Duration

	mu        sync.Mutex
	tenants   map[string]*fairTenant
	decisions int64 // global Admit-call counter, drives the activity window
	admitted  int64
	denied    int64
}

// NewWeightedFair builds a per-tenant weighted-fair admission policy.
func NewWeightedFair(cfg WeightedFairConfig) *WeightedFair {
	if cfg.DefaultWeight <= 0 {
		cfg.DefaultWeight = 1
	}
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	gate := cfg.Gate
	if gate == 0 {
		gate = defaultFairGate
	}
	maxTenants := cfg.MaxTenants
	if maxTenants <= 0 {
		maxTenants = defaultFairMaxTenants
	}
	retryAfter := cfg.RetryAfter
	if retryAfter <= 0 {
		retryAfter = defaultFairRetryAfter
	}
	f := &WeightedFair{
		defaultWeight: cfg.DefaultWeight,
		burst:         cfg.Burst,
		gate:          gate,
		maxTenants:    maxTenants,
		retryAfter:    retryAfter,
		tenants:       make(map[string]*fairTenant),
	}
	for name, w := range cfg.Weights {
		if w <= 0 {
			w = cfg.DefaultWeight
		}
		f.tenants[name] = &fairTenant{weight: w, explicit: true}
	}
	return f
}

// Name implements Policy.
func (f *WeightedFair) Name() string { return "fair" }

// Admit implements Policy. Jobs without a tenant label share the ""
// tenant at the default weight.
func (f *WeightedFair) Admit(_ context.Context, job *workload.Job, snap Snapshot) Decision {
	tenant := ""
	if job != nil {
		tenant = job.Tenant
	}

	f.mu.Lock()
	defer f.mu.Unlock()

	f.decisions++
	t := f.tenants[tenant]
	fresh := t != nil && f.decisions-t.lastSeen <= activityWindow
	if t == nil {
		if len(f.tenants) >= f.maxTenants {
			f.prune()
		}
		t = &fairTenant{weight: f.defaultWeight}
		f.tenants[tenant] = t
	}

	frontier, contested := f.minActiveVT(tenant)
	// Entry lift: a tenant arriving (or returning after the activity
	// window) starts at the frontier — idle time earns no credit
	// against tenants that kept submitting. A continuously-active
	// tenant is never lifted; its low vt from small 1/weight steps IS
	// its weight advantage.
	if !fresh && contested && t.vt < frontier {
		t.vt = frontier
	}
	t.lastSeen = f.decisions

	// Below the pressure gate the queue can absorb everyone: admit and
	// keep the ledger current so fairness starts from true shares the
	// moment pressure hits. Unknown capacity means unknown slack —
	// enforce.
	enforce := f.gate < 0 || snap.QueueCap == 0 ||
		float64(snap.QueueDepth) >= f.gate*float64(snap.QueueCap)

	if enforce && contested && t.vt > frontier+f.burst/t.weight {
		t.denied++
		f.denied++
		return Decision{Reason: ReasonOverWeight, RetryAfter: f.retryAfter}
	}

	t.vt += 1 / t.weight
	// Debt ceiling: an ungated admit must not push vt arbitrarily far
	// past the frontier — a tenant that raced ahead while the queue was
	// empty is throttled for at most one burst, not starved, when
	// pressure arrives. (No-op on enforced admits, which the deny check
	// already bounds.)
	if ceil := frontier + (f.burst+1)/t.weight; contested && t.vt > ceil {
		t.vt = ceil
	}
	t.admitted++
	f.admitted++
	return Decision{Admit: true}
}

// minActiveVT returns the lowest virtual time among recently-active
// tenants other than `self`, and whether any exist — an uncontested
// tenant is never denied (there is no one to be unfair to). Caller
// holds f.mu.
func (f *WeightedFair) minActiveVT(self string) (float64, bool) {
	min, found := 0.0, false
	for name, t := range f.tenants {
		if name == self || f.decisions-t.lastSeen > activityWindow {
			continue
		}
		if !found || t.vt < min {
			min, found = t.vt, true
		}
	}
	return min, found
}

// prune evicts the stalest implicit-weight tenants to make room.
// Explicitly-weighted tenants are configuration and never evicted.
// Caller holds f.mu.
func (f *WeightedFair) prune() {
	for name, t := range f.tenants {
		if !t.explicit && f.decisions-t.lastSeen > activityWindow {
			delete(f.tenants, name)
		}
	}
	if len(f.tenants) < f.maxTenants {
		return
	}
	// Still full: drop the single stalest implicit tenant so the table
	// cannot grow without bound even under a constant churn of names.
	var victim string
	var victimSeen int64
	for name, t := range f.tenants {
		if t.explicit {
			continue
		}
		if victim == "" || t.lastSeen < victimSeen {
			victim, victimSeen = name, t.lastSeen
		}
	}
	if victim != "" {
		delete(f.tenants, victim)
	}
}

// Stats implements Policy.
func (f *WeightedFair) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	tenants := make(map[string]TenantStats, len(f.tenants))
	for name, t := range f.tenants {
		tenants[name] = TenantStats{Admitted: t.admitted, Denied: t.denied, Weight: t.weight}
	}
	return Stats{Policy: f.Name(), Admitted: f.admitted, Denied: f.denied, Tenants: tenants}
}
