// Package admission implements pluggable edge admission control: a
// policy decides, before a job reaches any admission queue, whether the
// deployment should take it at all. Queue backpressure (429 queue_full)
// is the last line of defense — it fires when a queue is physically
// full; admission policies are the first line — they shape WHICH work
// gets queue space while the system still has room to choose, so heavy
// traffic degrades by policy (rate limits, per-tenant fairness) instead
// of by a 429 storm racing for the last slots.
//
// The split mirrors the AdmissionPolicy/SnapshotProvider decomposition
// of inference-serving control planes: the policy is a pure decision
// function over (job, snapshot); the SnapshotProvider is whoever owns
// the queues — a single service, a shard router summing its shards, or
// a federation gateway with only partial knowledge — and feeds the
// policy a consistent view of the pressure signals at decision time.
// Policies never reach back into the scheduler: everything they may
// consult is in the Snapshot.
//
// Two policies ship: TokenBucket (aggregate rate limiting) and
// WeightedFair (per-tenant weighted fair admission under pressure).
// Both are safe for concurrent use and O(1) per decision.
package admission

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"dollymp/internal/workload"
)

// Snapshot is the pressure view a SnapshotProvider feeds the policy at
// decision time. All fields are deployment-wide from the provider's
// perspective: a shard router sums its shards, a gateway reports what
// it knows (possibly nothing — see QueueCap).
type Snapshot struct {
	// QueueDepth is the number of jobs waiting in admission queues.
	QueueDepth int
	// QueueCap is the total admission-queue capacity. 0 means unknown
	// (a stateless gateway has no queue of its own); policies that gate
	// on fullness must treat unknown capacity as "always under
	// pressure" — the conservative reading at the outermost edge.
	QueueCap int
	// ActiveJobs counts admitted, unfinished jobs in the engines.
	ActiveJobs int
	// Clock is the virtual-clock frontier in slots.
	Clock int64
	// PendingArrivals counts jobs injected but not yet arrived at the
	// engine clock — the clock-lag proxy: how far intake is running
	// ahead of simulation progress.
	PendingArrivals int
}

// SnapshotProvider feeds policies the pressure view. The service, the
// shard router, and the federation gateway each implement it over their
// own state.
type SnapshotProvider interface {
	AdmissionSnapshot() Snapshot
}

// Decision is a policy's verdict on one job.
type Decision struct {
	// Admit accepts the job into the admission queue path.
	Admit bool
	// Reason is the machine-readable denial reason (one of the Reason*
	// constants); empty on admit. It travels to clients in the error
	// envelope so retry behavior can branch on it.
	Reason string
	// RetryAfter is the server's hint for when a denied submission is
	// worth retrying; zero means "immediately".
	RetryAfter time.Duration
}

// Denial reasons carried in Decision.Reason (and the HTTP envelope).
const (
	// ReasonRateLimited: the aggregate intake rate exceeded the token
	// bucket.
	ReasonRateLimited = "rate_limited"
	// ReasonOverWeight: the tenant is ahead of its weighted fair share
	// while the deployment is under pressure.
	ReasonOverWeight = "tenant_over_weight"
)

// Policy decides job admission at the edge. Admit must be safe for
// concurrent use and cheap — it sits on the submission hot path, once
// per job per submission attempt (a client retry is a fresh attempt).
// The context is the submission's; policies may honor its deadline but
// must not block on it.
type Policy interface {
	// Name identifies the policy ("token-bucket", "fair") in status
	// surfaces and logs.
	Name() string
	// Admit decides one job against the current pressure snapshot.
	Admit(ctx context.Context, job *workload.Job, snap Snapshot) Decision
	// Stats reports cumulative decision accounting for /v1/admission.
	Stats() Stats
}

// TenantStats is one tenant's slice of a fair policy's accounting.
type TenantStats struct {
	Admitted int64   `json:"admitted"`
	Denied   int64   `json:"denied"`
	Weight   float64 `json:"weight"`
}

// Stats is a policy's cumulative decision accounting.
type Stats struct {
	Policy   string `json:"policy"`
	Admitted int64  `json:"admitted"`
	Denied   int64  `json:"denied"`
	// Tenants breaks decisions down per tenant; nil for tenant-blind
	// policies (token bucket).
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// ParseWeights parses a per-tenant weight list of the form
// "a=3,b=1.5": comma-separated tenant=weight pairs, weights positive.
// The empty string yields an empty (non-nil) map — every tenant at the
// default weight.
func ParseWeights(s string) (map[string]float64, error) {
	out := make(map[string]float64)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("admission: weight %q is not tenant=weight", pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || !(w > 0) {
			return nil, fmt.Errorf("admission: tenant %q has invalid weight %q", name, val)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("admission: duplicate tenant %q", name)
		}
		out[name] = w
	}
	return out, nil
}

// FormatWeights renders a weight map in ParseWeights form, tenants
// sorted, for logs and status lines.
func FormatWeights(w map[string]float64) string {
	names := make([]string, 0, len(w))
	for name := range w {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s=%g", name, w[name])
	}
	return strings.Join(parts, ",")
}
