package admission

import (
	"context"
	"math"
	"testing"
	"time"

	"dollymp/internal/resources"
	"dollymp/internal/workload"
)

func job(tenant string) *workload.Job {
	return &workload.Job{Tenant: tenant}
}

func TestParseWeights(t *testing.T) {
	w, err := ParseWeights("a=3,b=1.5, c=1")
	if err != nil {
		t.Fatalf("ParseWeights: %v", err)
	}
	want := map[string]float64{"a": 3, "b": 1.5, "c": 1}
	if len(w) != len(want) {
		t.Fatalf("got %v want %v", w, want)
	}
	for k, v := range want {
		if w[k] != v {
			t.Errorf("weight[%s] = %v, want %v", k, w[k], v)
		}
	}
	if got, err := ParseWeights(""); err != nil || got == nil || len(got) != 0 {
		t.Errorf("empty string: got %v, %v; want empty map, nil", got, err)
	}
	for _, bad := range []string{"a", "a=", "a=0", "a=-1", "a=x", "=2", "a=1,a=2"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Errorf("ParseWeights(%q): expected error", bad)
		}
	}
}

func TestFormatWeightsRoundTrip(t *testing.T) {
	in := "a=3,b=1.5,c=1"
	w, err := ParseWeights(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatWeights(w); got != in {
		t.Errorf("FormatWeights = %q, want %q", got, in)
	}
}

// TestTokenBucketDeterministic drives the bucket with a fake clock:
// burst admits, then denies with an exact RetryAfter, then refills.
func TestTokenBucketDeterministic(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewTokenBucket(TokenBucketConfig{
		Rate:  10, // 1 token per 100ms
		Burst: 3,
		Now:   func() time.Time { return now },
	})
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if d := b.Admit(ctx, job(""), Snapshot{}); !d.Admit {
			t.Fatalf("admit %d: denied (%+v)", i, d)
		}
	}
	d := b.Admit(ctx, job(""), Snapshot{})
	if d.Admit {
		t.Fatal("4th admit should be denied: bucket empty")
	}
	if d.Reason != ReasonRateLimited {
		t.Errorf("reason = %q, want %q", d.Reason, ReasonRateLimited)
	}
	if d.RetryAfter != 100*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 100ms (one token at rate 10/s)", d.RetryAfter)
	}

	// Advance exactly one token's worth: one admit, then empty again.
	now = now.Add(100 * time.Millisecond)
	if d := b.Admit(ctx, job(""), Snapshot{}); !d.Admit {
		t.Fatalf("post-refill admit denied: %+v", d)
	}
	if d := b.Admit(ctx, job(""), Snapshot{}); d.Admit {
		t.Fatal("bucket should be empty again")
	}

	// A long idle period must cap at Burst, not accumulate.
	now = now.Add(time.Hour)
	admitted := 0
	for b.Admit(ctx, job(""), Snapshot{}).Admit {
		admitted++
	}
	if admitted != 3 {
		t.Errorf("after long idle: admitted %d, want burst 3", admitted)
	}

	st := b.Stats()
	if st.Policy != "token-bucket" || st.Admitted != 7 || st.Denied != 3 {
		t.Errorf("stats = %+v, want policy token-bucket admitted 7 denied 3", st)
	}
}

// TestWeightedFairSharesWithin10Pct is the acceptance property: under
// saturated offered load from tenants with 4:1:1 weights, admitted
// counts land within 10% of the weighted shares.
func TestWeightedFairSharesWithin10Pct(t *testing.T) {
	weights := map[string]float64{"heavy": 4, "light": 1, "tiny": 1}
	f := NewWeightedFair(WeightedFairConfig{Weights: weights, Gate: -1})
	ctx := context.Background()
	pressured := Snapshot{QueueDepth: 100, QueueCap: 128}

	// Round-robin saturated offered load: every tenant always has a job
	// waiting, so admissions are allocated purely by policy.
	admitted := map[string]int{}
	const rounds = 3000
	for i := 0; i < rounds; i++ {
		for _, tn := range []string{"heavy", "light", "tiny"} {
			if f.Admit(ctx, job(tn), pressured).Admit {
				admitted[tn]++
			}
		}
	}

	total := admitted["heavy"] + admitted["light"] + admitted["tiny"]
	if total == 0 {
		t.Fatal("nothing admitted")
	}
	wsum := 6.0
	for tn, w := range weights {
		share := float64(admitted[tn]) / float64(total)
		want := w / wsum
		if math.Abs(share-want) > 0.10*want {
			t.Errorf("tenant %s: share %.3f, want %.3f ±10%% (admitted %v)",
				tn, share, want, admitted)
		}
	}

	st := f.Stats()
	if st.Policy != "fair" || st.Denied == 0 {
		t.Errorf("stats = %+v: want policy fair with non-zero denials under saturation", st)
	}
	if st.Tenants["heavy"].Weight != 4 {
		t.Errorf("heavy weight in stats = %v, want 4", st.Tenants["heavy"].Weight)
	}
}

// TestWeightedFairGate: below the pressure gate everything is admitted;
// above it the over-weight tenant is denied.
func TestWeightedFairGate(t *testing.T) {
	f := NewWeightedFair(WeightedFairConfig{
		Weights: map[string]float64{"a": 1, "b": 1},
	}) // Gate 0 -> default 0.5
	ctx := context.Background()

	idle := Snapshot{QueueDepth: 10, QueueCap: 128}
	for i := 0; i < 200; i++ {
		// Only "a" submits while idle: all admitted regardless of share.
		if d := f.Admit(ctx, job("a"), idle); !d.Admit {
			t.Fatalf("idle admit %d denied: %+v", i, d)
		}
	}

	// Under pressure, with "b" active, "a" must be throttled to ~50%:
	// its idle-time vt was clamped to the frontier, so it carries no
	// banked credit and no debt.
	pressured := Snapshot{QueueDepth: 100, QueueCap: 128}
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		for _, tn := range []string{"a", "b"} {
			if f.Admit(ctx, job(tn), pressured).Admit {
				counts[tn]++
			}
		}
	}
	if counts["b"] == 0 {
		t.Fatal("tenant b starved")
	}
	ratio := float64(counts["a"]) / float64(counts["b"])
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("equal-weight ratio a/b = %.3f (counts %v), want within [0.9, 1.1]", ratio, counts)
	}
}

// TestWeightedFairUnknownCapacityEnforces: QueueCap==0 (stateless
// gateway) means fairness is always on.
func TestWeightedFairUnknownCapacityEnforces(t *testing.T) {
	f := NewWeightedFair(WeightedFairConfig{Weights: map[string]float64{"a": 1, "b": 1}})
	ctx := context.Background()
	denied := 0
	for i := 0; i < 100; i++ {
		// a offers 4x b's load at equal weight: the excess must be
		// denied even though the zero-cap snapshot reports no queue.
		f.Admit(ctx, job("b"), Snapshot{})
		for k := 0; k < 4; k++ {
			if !f.Admit(ctx, job("a"), Snapshot{}).Admit {
				denied++
			}
		}
	}
	if denied == 0 {
		t.Error("zero-cap snapshot never enforced fairness on 4x-over-share tenant")
	}
}

// TestWeightedFairLoneTenant: a single tenant is never denied by its
// own frontier, even with fairness force-enabled.
func TestWeightedFairLoneTenant(t *testing.T) {
	f := NewWeightedFair(WeightedFairConfig{Gate: -1})
	ctx := context.Background()
	for i := 0; i < 500; i++ {
		if d := f.Admit(ctx, job("solo"), Snapshot{QueueDepth: 100, QueueCap: 100}); !d.Admit {
			t.Fatalf("lone tenant denied at %d: %+v", i, d)
		}
	}
}

// TestWeightedFairIdleTenantLeavesFrontier: a tenant that stops
// submitting stops anchoring the frontier after the activity window, so
// survivors are not throttled against a ghost.
func TestWeightedFairIdleTenantLeavesFrontier(t *testing.T) {
	f := NewWeightedFair(WeightedFairConfig{Gate: -1})
	ctx := context.Background()
	snap := Snapshot{QueueDepth: 100, QueueCap: 100}

	// "ghost" admits once at vt near zero, then goes silent.
	f.Admit(ctx, job("ghost"), snap)
	// "live" keeps submitting; once the window passes, every job must
	// be admitted again even though live.vt >> ghost.vt.
	deniedAfterWindow := 0
	for i := 0; i < activityWindow+200; i++ {
		d := f.Admit(ctx, job("live"), snap)
		if i > activityWindow && !d.Admit {
			deniedAfterWindow++
		}
	}
	if deniedAfterWindow != 0 {
		t.Errorf("live tenant denied %d times after ghost idled out", deniedAfterWindow)
	}
}

// TestWeightedFairPruneBounded: implicit tenants are evicted at the
// table cap; explicit ones never are.
func TestWeightedFairPruneBounded(t *testing.T) {
	f := NewWeightedFair(WeightedFairConfig{
		Weights:    map[string]float64{"keep": 2},
		MaxTenants: 8,
	})
	ctx := context.Background()
	for i := 0; i < 1000; i++ {
		f.Admit(ctx, job(string(rune('a'+i%26))+string(rune('0'+i/26%10))), Snapshot{QueueDepth: 0, QueueCap: 128})
	}
	f.mu.Lock()
	n := len(f.tenants)
	_, kept := f.tenants["keep"]
	f.mu.Unlock()
	if n > 9 { // cap + at most one in-flight insert
		t.Errorf("tenant table grew to %d, cap 8", n)
	}
	if !kept {
		t.Error("explicitly weighted tenant was pruned")
	}
}

func TestTenantValidateLength(t *testing.T) {
	j := workload.SingleTask(1, 0, resources.Vec(1000, 2048), 10, 0)
	j.Tenant = string(make([]byte, 65))
	if err := j.Validate(); err == nil {
		t.Error("65-byte tenant label should fail validation")
	}
	j.Tenant = string(make([]byte, 64))
	if err := j.Validate(); err != nil {
		t.Errorf("64-byte tenant label should pass: %v", err)
	}
}
