package admission

import (
	"context"
	"sync"
	"time"

	"dollymp/internal/workload"
)

// TokenBucketConfig parameterizes a TokenBucket policy.
type TokenBucketConfig struct {
	// Rate is the sustained admission rate in jobs per second. Must be
	// positive.
	Rate float64
	// Burst is the bucket capacity in jobs — how far intake may run
	// ahead of the sustained rate. Values below 1 are raised to 1 so a
	// fresh bucket can always admit at least one job.
	Burst float64
	// Now supplies the clock; nil means time.Now. Tests inject a fake
	// clock to make refill deterministic.
	Now func() time.Time
}

// TokenBucket admits jobs at a bounded aggregate rate: a classic
// leaky-bucket meter refilled continuously at Rate tokens/second up to
// Burst. Denials carry the exact RetryAfter at which one full token
// will have accrued, so a well-behaved client re-submits at the moment
// the deny turns into an admit instead of hammering the edge.
type TokenBucket struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu       sync.Mutex
	tokens   float64
	last     time.Time
	admitted int64
	denied   int64
}

// NewTokenBucket builds a token-bucket policy. Panics if Rate is not
// positive — a zero-rate bucket admits nothing and is always a config
// error; use no policy to admit everything.
func NewTokenBucket(cfg TokenBucketConfig) *TokenBucket {
	if !(cfg.Rate > 0) {
		panic("admission: TokenBucketConfig.Rate must be positive")
	}
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &TokenBucket{
		rate:   cfg.Rate,
		burst:  cfg.Burst,
		now:    now,
		tokens: cfg.Burst,
		last:   now(),
	}
}

// Name implements Policy.
func (b *TokenBucket) Name() string { return "token-bucket" }

// Admit implements Policy: spend one token if available, otherwise deny
// with the time until a full token accrues.
func (b *TokenBucket) Admit(_ context.Context, _ *workload.Job, _ Snapshot) Decision {
	b.mu.Lock()
	defer b.mu.Unlock()

	now := b.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now

	if b.tokens >= 1 {
		b.tokens--
		b.admitted++
		return Decision{Admit: true}
	}
	b.denied++
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	return Decision{Reason: ReasonRateLimited, RetryAfter: wait}
}

// Stats implements Policy.
func (b *TokenBucket) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{Policy: b.Name(), Admitted: b.admitted, Denied: b.denied}
}
