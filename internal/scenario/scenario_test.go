package scenario

import (
	"bytes"
	"strings"
	"testing"

	"dollymp/internal/cluster"
	"dollymp/internal/core"
	"dollymp/internal/sim"
	"dollymp/internal/trace"
)

func demo(t *testing.T) *Scenario {
	t.Helper()
	return &Scenario{
		Version: FormatVersion,
		Name:    "demo",
		Fleet:   Specs(cluster.Testbed30()),
		Jobs:    trace.MixedDeployment(8, trace.Arrival{Kind: trace.FixedInterval, MeanGap: 5}, 3),
		Events: []sim.Event{
			{At: 10, Server: 2, Kind: sim.EventSlowdown, Factor: 0.5},
		},
		Seed: 7,
	}
}

func TestRoundTrip(t *testing.T) {
	s := demo(t)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "demo" || len(got.Fleet) != 30 || len(got.Jobs) != 8 || len(got.Events) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Events[0].Factor != 0.5 {
		t.Fatalf("event factor: %+v", got.Events[0])
	}
}

func TestRunIsReproducible(t *testing.T) {
	s := demo(t)
	a, err := s.Run(core.MustNew())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(core.MustNew())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalFlowtime() != b.TotalFlowtime() || a.Makespan != b.Makespan {
		t.Fatalf("scenario not reproducible: %d/%d vs %d/%d",
			a.TotalFlowtime(), a.Makespan, b.TotalFlowtime(), b.Makespan)
	}
	if len(a.Jobs) != 8 {
		t.Fatalf("completed %d/8", len(a.Jobs))
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"version", func(s *Scenario) { s.Version = 9 }, "version"},
		{"no fleet", func(s *Scenario) { s.Fleet = nil }, "no servers"},
		{"no jobs", func(s *Scenario) { s.Jobs = nil }, "no jobs"},
		{"bad job", func(s *Scenario) { s.Jobs[0].Phases = nil }, "phases"},
		{"bad fleet", func(s *Scenario) { s.Fleet[0].Speed = 0 }, "speed"},
	}
	for _, c := range cases {
		s := demo(t)
		c.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("empty scenario accepted")
	}
}

func TestRunRejectsBadEvents(t *testing.T) {
	s := demo(t)
	s.Events = []sim.Event{{At: 0, Server: 999, Kind: sim.EventFail}}
	if _, err := s.Run(core.MustNew()); err == nil {
		t.Error("out-of-range event accepted")
	}
}
