// Package scenario bundles everything that defines one reproducible
// simulation — the fleet, the workload, the fault-injection schedule,
// and the engine knobs — into a single versioned JSON document, so an
// experiment can be shared, re-run and certified bit-for-bit.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"dollymp/internal/cluster"
	"dollymp/internal/sched"
	"dollymp/internal/sim"
	"dollymp/internal/workload"
)

// FormatVersion is the current scenario file version.
const FormatVersion = 1

// Scenario is one self-contained simulation definition. The scheduler is
// not part of the file — the point of a scenario is to run several
// policies over identical conditions.
type Scenario struct {
	Version int             `json:"version"`
	Name    string          `json:"name,omitempty"`
	Fleet   []cluster.Spec  `json:"fleet"`
	Jobs    []*workload.Job `json:"jobs"`
	Events  []sim.Event     `json:"events,omitempty"`
	Seed    uint64          `json:"seed"`
	// TransferPenalty and DelayAssignment configure the intermediate-
	// data cost model; Deterministic disables duration noise.
	TransferPenalty int64 `json:"transferPenalty,omitempty"`
	DelayAssignment bool  `json:"delayAssignment,omitempty"`
	Deterministic   bool  `json:"deterministic,omitempty"`
}

// Validate checks the scenario is runnable.
func (s *Scenario) Validate() error {
	if s.Version != FormatVersion {
		return fmt.Errorf("scenario: unsupported version %d (want %d)", s.Version, FormatVersion)
	}
	if len(s.Fleet) == 0 {
		return fmt.Errorf("scenario: no servers")
	}
	if len(s.Jobs) == 0 {
		return fmt.Errorf("scenario: no jobs")
	}
	for _, j := range s.Jobs {
		if err := j.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	// Building the cluster validates the specs; sim.New validates the
	// events against it.
	if _, err := cluster.New(s.Fleet); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// Write serializes the scenario as indented JSON.
func (s *Scenario) Write(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Read parses and validates a scenario.
func Read(r io.Reader) (*Scenario, error) {
	var s Scenario
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Run executes the scenario under the given scheduler. Each call builds
// a fresh cluster, so a scenario can be run repeatedly and concurrently.
func (s *Scenario) Run(policy sched.Scheduler) (*sim.Result, error) {
	fleet, err := cluster.New(s.Fleet)
	if err != nil {
		return nil, err
	}
	e, err := sim.New(sim.Config{
		Cluster:         fleet,
		Jobs:            s.Jobs,
		Scheduler:       policy,
		Seed:            s.Seed,
		Deterministic:   s.Deterministic,
		TransferPenalty: s.TransferPenalty,
		DelayAssignment: s.DelayAssignment,
		Events:          s.Events,
	})
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// Specs extracts a cluster's server specs so an in-memory fleet can be
// embedded in a scenario.
func Specs(c *cluster.Cluster) []cluster.Spec {
	out := make([]cluster.Spec, 0, c.Len())
	for _, srv := range c.Servers() {
		out = append(out, cluster.Spec{
			Name:     srv.Name,
			Capacity: srv.Capacity,
			Speed:    srv.Speed,
			Rack:     srv.Rack,
		})
	}
	return out
}
