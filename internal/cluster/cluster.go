// Package cluster models the heterogeneous server fleet DollyMP schedules
// onto: per-server capacities, a capacity-accounting allocation ledger,
// per-server speed factors (the paper's "powerful servers and normal
// computing nodes"), and time-varying background load, which §2 identifies
// as the second source of stragglers.
package cluster

import (
	"fmt"

	"dollymp/internal/resources"
)

// ServerID identifies a server within a Cluster.
type ServerID int

// Server is one machine in the fleet.
type Server struct {
	ID       ServerID
	Name     string
	Capacity resources.Vector
	// Speed scales task durations on this server: a task with base
	// duration d runs in d/Speed slots here. Powerful servers have
	// Speed > 1.
	Speed float64
	// Rack is the rack index; the 30-node testbed of §6.1 spans two
	// racks in a folded CLOS. Used by locality-aware placement.
	Rack int

	free resources.Vector
	// background is an extra slowdown factor in (0, 1]; 1 means no
	// background interference. Mutated by failure/slowdown injection.
	background float64
	// failed marks the server offline: no capacity is visible and
	// allocations are rejected until Restore.
	failed bool
}

// Free returns the currently unallocated capacity (zero while failed).
func (s *Server) Free() resources.Vector {
	if s.failed {
		return resources.Vector{}
	}
	return s.free
}

// Failed reports whether the server is offline.
func (s *Server) Failed() bool { return s.failed }

// Used returns the currently allocated capacity.
func (s *Server) Used() resources.Vector { return s.Capacity.Sub(s.free) }

// Fail marks the server offline. The caller (the simulator) is
// responsible for first releasing every allocation it holds there.
func (c *Cluster) Fail(id ServerID) { c.Server(id).failed = true }

// Restore brings a failed server back online with full free capacity.
// Restoring a healthy server is a no-op (its ledger must not be wiped).
func (c *Cluster) Restore(id ServerID) {
	s := c.Server(id)
	if !s.failed {
		return
	}
	s.failed = false
	s.free = s.Capacity
}

// EffectiveSpeed is the server speed after background interference.
func (s *Server) EffectiveSpeed() float64 { return s.Speed * s.background }

// Cluster is a fleet of servers with an allocation ledger. It is not safe
// for concurrent mutation; the simulator owns it from a single goroutine
// (share memory by communicating at the simulation API boundary instead).
type Cluster struct {
	servers []*Server
	total   resources.Vector
	// index maps server ID to position for sparse-ID fleets; nil while
	// IDs are dense (position == ID), the common case.
	index map[ServerID]int
}

// New builds a cluster from server specs. Each spec's free capacity starts
// equal to its full capacity. IDs are assigned densely in spec order.
func New(specs []Spec) (*Cluster, error) {
	ids := make([]ServerID, len(specs))
	for i := range ids {
		ids[i] = ServerID(i)
	}
	return NewWithIDs(specs, ids)
}

// NewWithIDs is New with explicit server IDs, for fleets whose IDs are
// not dense — e.g. a partition of a larger cluster that keeps the
// global IDs. IDs must be non-negative, unique, and strictly increasing
// so Servers() stays in ID order.
func NewWithIDs(specs []Spec, ids []ServerID) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: no servers")
	}
	if len(ids) != len(specs) {
		return nil, fmt.Errorf("cluster: %d ids for %d specs", len(ids), len(specs))
	}
	c := &Cluster{servers: make([]*Server, 0, len(specs))}
	dense := true
	for i, sp := range specs {
		if !sp.Capacity.IsValid() || sp.Capacity.IsZero() {
			return nil, fmt.Errorf("cluster: server %d has invalid capacity %v", i, sp.Capacity)
		}
		if !(sp.Speed > 0) {
			return nil, fmt.Errorf("cluster: server %d has invalid speed %v", i, sp.Speed)
		}
		if ids[i] < 0 {
			return nil, fmt.Errorf("cluster: server %d has negative ID %d", i, ids[i])
		}
		if i > 0 && ids[i] <= ids[i-1] {
			return nil, fmt.Errorf("cluster: IDs must be strictly increasing, got %d after %d", ids[i], ids[i-1])
		}
		if int(ids[i]) != i {
			dense = false
		}
		s := &Server{
			ID:         ids[i],
			Name:       sp.Name,
			Capacity:   sp.Capacity,
			Speed:      sp.Speed,
			Rack:       sp.Rack,
			free:       sp.Capacity,
			background: 1,
		}
		c.servers = append(c.servers, s)
		c.total = c.total.Add(sp.Capacity)
	}
	if !dense {
		c.index = make(map[ServerID]int, len(c.servers))
		for i, s := range c.servers {
			c.index[s.ID] = i
		}
	}
	return c, nil
}

// Spec describes one server for New.
type Spec struct {
	Name     string
	Capacity resources.Vector
	Speed    float64
	Rack     int
}

// Len returns the number of servers.
func (c *Cluster) Len() int { return len(c.servers) }

// Server returns the server with the given ID. It panics on an unknown
// ID, mirroring a slice index out of range on dense fleets.
func (c *Cluster) Server(id ServerID) *Server {
	if c.index == nil {
		return c.servers[id]
	}
	if i, ok := c.index[id]; ok {
		return c.servers[i]
	}
	panic(fmt.Sprintf("cluster: unknown server %d", id))
}

// Contains reports whether a server with the given ID exists.
func (c *Cluster) Contains(id ServerID) bool {
	if c.index == nil {
		return id >= 0 && int(id) < len(c.servers)
	}
	_, ok := c.index[id]
	return ok
}

// MaxID returns the highest server ID in the fleet. Equal to Len()-1 on
// dense fleets; larger on sparse ones.
func (c *Cluster) MaxID() ServerID { return c.servers[len(c.servers)-1].ID }

// Servers returns the fleet in ID order. Callers must not modify the
// returned slice.
func (c *Cluster) Servers() []*Server { return c.servers }

// Total returns the summed capacity across all servers (the denominator of
// the dominant share, Eq. 9/15).
func (c *Cluster) Total() resources.Vector { return c.total }

// TotalFree returns the summed free capacity of online servers.
func (c *Cluster) TotalFree() resources.Vector {
	var f resources.Vector
	for _, s := range c.servers {
		f = f.Add(s.Free())
	}
	return f
}

// TotalUsed returns the summed allocated capacity.
func (c *Cluster) TotalUsed() resources.Vector {
	return c.total.Sub(c.TotalFree())
}

// Allocate reserves demand on server id. It returns an error if the demand
// does not fit the server's free capacity.
func (c *Cluster) Allocate(id ServerID, demand resources.Vector) error {
	if !demand.IsValid() {
		return fmt.Errorf("cluster: invalid demand %v", demand)
	}
	s := c.Server(id)
	if s.failed {
		return fmt.Errorf("cluster: server %s is failed", s.Name)
	}
	if !demand.Fits(s.free) {
		return fmt.Errorf("cluster: demand %v does not fit free %v on %s", demand, s.free, s.Name)
	}
	s.free = s.free.Sub(demand)
	return nil
}

// Release returns demand to server id. It returns an error if the release
// would exceed the server's capacity (a double-release bug).
func (c *Cluster) Release(id ServerID, demand resources.Vector) error {
	if !demand.IsValid() {
		return fmt.Errorf("cluster: invalid release %v", demand)
	}
	s := c.Server(id)
	f := s.free.Add(demand)
	if !f.Fits(s.Capacity) {
		return fmt.Errorf("cluster: release %v would exceed capacity on %s (free %v, cap %v)",
			demand, s.Name, s.free, s.Capacity)
	}
	s.free = f
	return nil
}

// SetBackground sets the background-interference factor of server id;
// f must be in (0, 1]. Used by slowdown injection to model the
// time-varying co-located load of §2.
func (c *Cluster) SetBackground(id ServerID, f float64) error {
	if !(f > 0) || f > 1 {
		return fmt.Errorf("cluster: background factor %v out of (0,1]", f)
	}
	c.Server(id).background = f
	return nil
}

// CheckInvariants verifies the allocation ledger: every server's free
// capacity is within [0, capacity]. Tests and the simulator's paranoid
// mode call this after every slot.
func (c *Cluster) CheckInvariants() error {
	for _, s := range c.servers {
		if !s.free.IsValid() {
			return fmt.Errorf("cluster: server %s has negative free %v", s.Name, s.free)
		}
		if !s.free.Fits(s.Capacity) {
			return fmt.Errorf("cluster: server %s free %v exceeds capacity %v", s.Name, s.free, s.Capacity)
		}
	}
	return nil
}

// Reset returns every server to fully free and online with no
// background load.
func (c *Cluster) Reset() {
	for _, s := range c.servers {
		s.free = s.Capacity
		s.background = 1
		s.failed = false
	}
}
