package cluster

import (
	"testing"

	"dollymp/internal/resources"
)

func TestPartitionRoundRobin(t *testing.T) {
	c := Testbed30()
	parts, err := Partition(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d partitions", len(parts))
	}
	// Disjoint and complete: every original server name appears in
	// exactly one partition, and total capacity is conserved.
	seen := make(map[string]int)
	var total, sum resources.Vector
	for _, s := range c.Servers() {
		total = total.Add(s.Capacity)
	}
	for k, p := range parts {
		for _, s := range p.Servers() {
			if prev, dup := seen[s.Name]; dup {
				t.Fatalf("server %q in partitions %d and %d", s.Name, prev, k)
			}
			seen[s.Name] = k
			sum = sum.Add(s.Capacity)
		}
	}
	if len(seen) != c.Len() {
		t.Fatalf("partitions cover %d of %d servers", len(seen), c.Len())
	}
	if sum != total {
		t.Fatalf("capacity not conserved: %v vs %v", sum, total)
	}
	// Round-robin by index: original server i lands in partition i%4.
	for i, s := range c.Servers() {
		if seen[s.Name] != i%4 {
			t.Errorf("server %d (%s) in partition %d, want %d", i, s.Name, seen[s.Name], i%4)
		}
	}
	// IDs are renumbered dense within each partition.
	for k, p := range parts {
		for i, s := range p.Servers() {
			if int(s.ID) != i {
				t.Errorf("partition %d server %d has ID %d", k, i, s.ID)
			}
		}
	}
}

func TestPartitionSpreadsHeterogeneity(t *testing.T) {
	// Testbed30 fronts its powerful servers; round-robin must not put
	// them all in one shard. Compare per-partition total capacity: the
	// max/min core ratio should be modest.
	parts, err := Partition(Testbed30(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var min, max int64
	for i, p := range parts {
		var cores int64
		for _, s := range p.Servers() {
			cores += s.Capacity.CPUMilli
		}
		if i == 0 || cores < min {
			min = cores
		}
		if cores > max {
			max = cores
		}
	}
	if min == 0 || max > 2*min {
		t.Fatalf("partition core totals skewed: min %d, max %d", min, max)
	}
}

func TestPartitionSingleIsIdentity(t *testing.T) {
	c := Testbed30()
	parts, err := Partition(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].Len() != c.Len() {
		t.Fatalf("p=1 partition has %d servers, want %d", parts[0].Len(), c.Len())
	}
	for i, s := range parts[0].Servers() {
		o := c.Servers()[i]
		if s.Name != o.Name || s.Capacity != o.Capacity || s.Speed != o.Speed || s.ID != o.ID {
			t.Fatalf("p=1 server %d differs: %+v vs %+v", i, s, o)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	c := Uniform(4, resources.Cores(4, 8))
	if _, err := Partition(c, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := Partition(c, -2); err == nil {
		t.Error("p=-2 accepted")
	}
	if _, err := Partition(c, 5); err == nil {
		t.Error("p > server count accepted")
	}
}
