package cluster

import (
	"testing"
	"testing/quick"

	"dollymp/internal/resources"
)

func twoServer(t *testing.T) *Cluster {
	t.Helper()
	c, err := New([]Spec{
		{Name: "a", Capacity: resources.Cores(8, 16), Speed: 1},
		{Name: "b", Capacity: resources.Cores(16, 32), Speed: 1.5, Rack: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty fleet should error")
	}
	if _, err := New([]Spec{{Capacity: resources.Vec(0, 0), Speed: 1}}); err == nil {
		t.Error("zero capacity should error")
	}
	if _, err := New([]Spec{{Capacity: resources.Cores(1, 1), Speed: 0}}); err == nil {
		t.Error("zero speed should error")
	}
	if _, err := New([]Spec{{Capacity: resources.Vec(-1, 5), Speed: 1}}); err == nil {
		t.Error("negative capacity should error")
	}
}

func TestTotals(t *testing.T) {
	c := twoServer(t)
	if got := c.Total(); got != resources.Cores(24, 48) {
		t.Errorf("total: %v", got)
	}
	if got := c.TotalFree(); got != resources.Cores(24, 48) {
		t.Errorf("free: %v", got)
	}
	if got := c.TotalUsed(); !got.IsZero() {
		t.Errorf("used: %v", got)
	}
	if c.Len() != 2 {
		t.Errorf("len: %d", c.Len())
	}
}

func TestAllocateRelease(t *testing.T) {
	c := twoServer(t)
	d := resources.Cores(4, 8)
	if err := c.Allocate(0, d); err != nil {
		t.Fatal(err)
	}
	if got := c.Server(0).Free(); got != resources.Cores(4, 8) {
		t.Errorf("free after alloc: %v", got)
	}
	if got := c.Server(0).Used(); got != d {
		t.Errorf("used after alloc: %v", got)
	}
	if got := c.TotalUsed(); got != d {
		t.Errorf("cluster used: %v", got)
	}
	if err := c.Release(0, d); err != nil {
		t.Fatal(err)
	}
	if got := c.Server(0).Free(); got != c.Server(0).Capacity {
		t.Errorf("free after release: %v", got)
	}
}

func TestAllocateOverflow(t *testing.T) {
	c := twoServer(t)
	if err := c.Allocate(0, resources.Cores(9, 1)); err == nil {
		t.Error("over-CPU alloc should fail")
	}
	if err := c.Allocate(0, resources.Cores(1, 17)); err == nil {
		t.Error("over-mem alloc should fail")
	}
	if err := c.Allocate(0, resources.Vec(-1, 0)); err == nil {
		t.Error("negative alloc should fail")
	}
	// Failed allocation must not mutate state.
	if got := c.Server(0).Free(); got != c.Server(0).Capacity {
		t.Errorf("failed alloc mutated free: %v", got)
	}
}

func TestDoubleRelease(t *testing.T) {
	c := twoServer(t)
	if err := c.Release(0, resources.Cores(1, 1)); err == nil {
		t.Error("release beyond capacity should fail")
	}
	if err := c.Release(0, resources.Vec(-5, 0)); err == nil {
		t.Error("negative release should fail")
	}
}

func TestBackground(t *testing.T) {
	c := twoServer(t)
	s := c.Server(1)
	if got := s.EffectiveSpeed(); got != 1.5 {
		t.Errorf("effective speed: %v", got)
	}
	if err := c.SetBackground(1, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := s.EffectiveSpeed(); got != 0.75 {
		t.Errorf("slowed speed: %v", got)
	}
	if err := c.SetBackground(1, 0); err == nil {
		t.Error("zero background should fail")
	}
	if err := c.SetBackground(1, 1.5); err == nil {
		t.Error("background > 1 should fail")
	}
}

func TestFailRestore(t *testing.T) {
	c := twoServer(t)
	if err := c.Allocate(0, resources.Cores(2, 2)); err != nil {
		t.Fatal(err)
	}
	// Restoring a healthy server must not wipe its ledger.
	c.Restore(0)
	if got := c.Server(0).Used(); got != resources.Cores(2, 2) {
		t.Fatalf("restore wiped healthy ledger: used %v", got)
	}
	// Fail: no capacity visible, allocations rejected.
	if err := c.Release(0, resources.Cores(2, 2)); err != nil {
		t.Fatal(err)
	}
	c.Fail(0)
	if !c.Server(0).Failed() {
		t.Fatal("not failed")
	}
	if got := c.Server(0).Free(); !got.IsZero() {
		t.Fatalf("failed server shows free %v", got)
	}
	if err := c.Allocate(0, resources.Cores(1, 1)); err == nil {
		t.Fatal("allocation on failed server accepted")
	}
	if got := c.TotalFree(); got != c.Server(1).Capacity {
		t.Fatalf("total free should exclude failed server: %v", got)
	}
	c.Restore(0)
	if c.Server(0).Failed() || c.Server(0).Free() != c.Server(0).Capacity {
		t.Fatal("restore did not bring server back")
	}
	// Reset clears failure too.
	c.Fail(1)
	c.Reset()
	if c.Server(1).Failed() {
		t.Fatal("reset should clear failures")
	}
}

func TestReset(t *testing.T) {
	c := twoServer(t)
	if err := c.Allocate(0, resources.Cores(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBackground(0, 0.5); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if got := c.TotalFree(); got != c.Total() {
		t.Errorf("reset free: %v", got)
	}
	if got := c.Server(0).EffectiveSpeed(); got != 1 {
		t.Errorf("reset speed: %v", got)
	}
}

func TestInvariantsAfterRandomOps(t *testing.T) {
	// Property: any sequence of successful Allocate/Release keeps the
	// ledger consistent.
	f := func(ops []uint16) bool {
		c, err := New([]Spec{
			{Name: "a", Capacity: resources.Cores(8, 16), Speed: 1},
			{Name: "b", Capacity: resources.Cores(16, 32), Speed: 1.5},
		})
		if err != nil {
			return false
		}
		type alloc struct {
			id ServerID
			d  resources.Vector
		}
		var live []alloc
		for _, op := range ops {
			id := ServerID(int(op) % c.Len())
			d := resources.Vec(int64(op%5000), int64(op%9000))
			if op%3 == 0 && len(live) > 0 {
				a := live[len(live)-1]
				live = live[:len(live)-1]
				if err := c.Release(a.id, a.d); err != nil {
					return false
				}
			} else if err := c.Allocate(id, d); err == nil {
				live = append(live, alloc{id, d})
			}
			if err := c.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTestbed30(t *testing.T) {
	c := Testbed30()
	if c.Len() != 30 {
		t.Fatalf("want 30 nodes, got %d", c.Len())
	}
	// §6.1: 328 cores total.
	if got := c.Total().CPUMilli; got != 328_000 {
		t.Errorf("total cores: got %d milli, want 328000", got)
	}
	racks := map[int]bool{}
	for _, s := range c.Servers() {
		racks[s.Rack] = true
		if s.Speed <= 0 {
			t.Errorf("server %s speed %v", s.Name, s.Speed)
		}
	}
	if len(racks) != 2 {
		t.Errorf("want 2 racks, got %d", len(racks))
	}
}

func TestLargeFleetDeterministic(t *testing.T) {
	a := LargeFleet(100, 9)
	b := LargeFleet(100, 9)
	if a.Len() != 100 {
		t.Fatal("len")
	}
	for i := range a.Servers() {
		sa, sb := a.Server(ServerID(i)), b.Server(ServerID(i))
		if sa.Capacity != sb.Capacity || sa.Speed != sb.Speed {
			t.Fatalf("fleet not deterministic at %d", i)
		}
	}
	// Heterogeneity: more than one distinct capacity class.
	caps := map[resources.Vector]bool{}
	for _, s := range a.Servers() {
		caps[s.Capacity] = true
	}
	if len(caps) < 3 {
		t.Errorf("want 3 machine classes, got %d", len(caps))
	}
}

func TestUniform(t *testing.T) {
	c := Uniform(4, resources.Cores(1, 1))
	if c.Len() != 4 || c.Total() != resources.Cores(4, 4) {
		t.Errorf("uniform: len=%d total=%v", c.Len(), c.Total())
	}
}
