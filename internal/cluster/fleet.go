package cluster

import (
	"fmt"

	"dollymp/internal/resources"
	"dollymp/internal/stats"
)

// Testbed30 builds the paper's private 30-node cluster (§6.1): two
// powerful servers (24 cores, 48 GB), seven normal servers (16 cores,
// 32–64 GB), and 21 small nodes (8 cores, 16 GB), 328 cores in total,
// across two racks. Powerful servers run tasks faster.
func Testbed30() *Cluster {
	specs := make([]Spec, 0, 30)
	for i := 0; i < 2; i++ {
		specs = append(specs, Spec{
			Name:     fmt.Sprintf("power-%d", i),
			Capacity: resources.Cores(24, 48),
			Speed:    1.5,
			Rack:     0,
		})
	}
	for i := 0; i < 7; i++ {
		gib := int64(32)
		if i%2 == 1 {
			gib = 64
		}
		specs = append(specs, Spec{
			Name:     fmt.Sprintf("normal-%d", i),
			Capacity: resources.Cores(16, gib),
			Speed:    1.2,
			Rack:     i % 2,
		})
	}
	for i := 0; i < 21; i++ {
		specs = append(specs, Spec{
			Name:     fmt.Sprintf("small-%d", i),
			Capacity: resources.Cores(8, 16),
			Speed:    1.0,
			Rack:     1 - i%2,
		})
	}
	c, err := New(specs)
	if err != nil {
		panic("cluster: Testbed30 construction failed: " + err.Error())
	}
	return c
}

// LargeFleet builds an n-server heterogeneous fleet in the style of the
// trace-driven simulations (§6.3, 30K servers): a mix of three machine
// classes with randomized speeds. Deterministic for a given seed.
func LargeFleet(n int, seed uint64) *Cluster {
	rng := stats.NewRNG(seed)
	specs := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		var cap resources.Vector
		var speed float64
		switch {
		case i%10 == 0: // 10% big machines
			cap = resources.Cores(32, 64)
			speed = rng.Range(1.3, 1.6)
		case i%10 < 4: // 30% medium machines
			cap = resources.Cores(16, 32)
			speed = rng.Range(1.0, 1.3)
		default: // 60% small machines
			cap = resources.Cores(8, 16)
			speed = rng.Range(0.8, 1.1)
		}
		specs = append(specs, Spec{
			Name:     fmt.Sprintf("node-%d", i),
			Capacity: cap,
			Speed:    speed,
			Rack:     i / 40,
		})
	}
	c, err := New(specs)
	if err != nil {
		panic("cluster: LargeFleet construction failed: " + err.Error())
	}
	return c
}

// Uniform builds n identical servers; convenient for unit tests and the
// analytical examples (§4.1 uses a single unit-capacity server).
func Uniform(n int, cap resources.Vector) *Cluster {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{Name: fmt.Sprintf("u-%d", i), Capacity: cap, Speed: 1}
	}
	c, err := New(specs)
	if err != nil {
		panic("cluster: Uniform construction failed: " + err.Error())
	}
	return c
}
