package cluster

import "fmt"

// Partition splits a fleet into p disjoint sub-fleets for the sharded
// scheduling service: shard k receives servers k, k+p, k+2p, ... of the
// original ID order. Round-robin by index, not by contiguous range, so
// every partition samples the fleet's heterogeneity — a testbed30 split
// does not put both powerful servers in shard 0 and leave shard 3 all
// small nodes. Server names are preserved (they stay globally unique);
// IDs are renumbered 0..len-1 within each partition, as required by
// Cluster's dense ID space.
//
// Each partition is a fresh, fully free cluster: partitioning is a
// construction-time operation, not a live migration.
func Partition(c *Cluster, p int) ([]*Cluster, error) {
	if p < 1 {
		return nil, fmt.Errorf("cluster: partition count %d < 1", p)
	}
	if p > c.Len() {
		return nil, fmt.Errorf("cluster: cannot split %d servers into %d partitions", c.Len(), p)
	}
	specs := make([][]Spec, p)
	for i, s := range c.Servers() {
		k := i % p
		specs[k] = append(specs[k], Spec{
			Name:     s.Name,
			Capacity: s.Capacity,
			Speed:    s.Speed,
			Rack:     s.Rack,
		})
	}
	out := make([]*Cluster, p)
	for k := range out {
		part, err := New(specs[k])
		if err != nil {
			return nil, fmt.Errorf("cluster: partition %d: %w", k, err)
		}
		out[k] = part
	}
	return out, nil
}
