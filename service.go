package dollymp

// The online service layer, re-exported through the facade via type
// aliases so embedders run the daemon core — a single scheduling loop
// or a sharded deployment — without importing internal packages:
//
//	svc, _ := dollymp.NewService(dollymp.ServiceConfig{
//	    Cluster: dollymp.Testbed30(), Scheduler: sched, Seed: 1,
//	})
//	svc.Start()
//	id, _ := svc.Submit(ctx, job)        // waits for queue space
//	http.ListenAndServe(addr, dollymp.NewAPIHandler(svc))
//
//	router, _ := dollymp.NewRouter(dollymp.RouterConfig{
//	    Fleet: dollymp.LargeFleet(120, 1), Shards: 4,
//	    NewScheduler: func(int) (dollymp.Scheduler, error) {
//	        return dollymp.NewScheduler(dollymp.KindDollyMP2)
//	    },
//	})
//	router.Start()
//	http.ListenAndServe(addr, dollymp.NewAPIHandler(router))

import (
	"dollymp/internal/cluster"
	"dollymp/internal/service"
	"dollymp/internal/shard"
	"dollymp/internal/stats"
)

// Service-layer aliases: the full method sets of the internal types are
// available through them.
type (
	// Service is one online scheduling loop (daemon core).
	Service = service.Service
	// ServiceConfig configures a Service.
	ServiceConfig = service.Config
	// ServiceAPI is the lifecycle surface the HTTP layer serves; both
	// *Service and *Router implement it.
	ServiceAPI = service.API
	// JobInfo is the externally visible lifecycle record of one job.
	JobInfo = service.JobInfo
	// JobLifecycle labels a job's position in the service lifecycle
	// (queued → admitted → running → completed).
	JobLifecycle = service.JobState
	// JobFilter selects jobs for Service.Jobs / Router.Jobs.
	JobFilter = service.JobFilter
	// ServiceCounts is the service's job accounting.
	ServiceCounts = service.Counts
	// ShardStatus is one scheduling loop's /v1/shards entry.
	ShardStatus = service.ShardStatus
	// ClusterSnapshot is the aggregated cluster/queue snapshot.
	ClusterSnapshot = service.ClusterSnapshot

	// Router fans the service API out over P partitioned loops.
	Router = shard.Router
	// RouterConfig configures a Router.
	RouterConfig = shard.Config
	// RoutePolicy selects the router's placement policy.
	RoutePolicy = shard.RoutePolicy

	// ECDF is an empirical CDF over float64 samples.
	ECDF = stats.ECDF
)

// Lifecycle states, in order.
const (
	JobQueued    = service.StateQueued
	JobAdmitted  = service.StateAdmitted
	JobRunning   = service.StateRunning
	JobCompleted = service.StateCompleted
)

// Routing policies.
const (
	RouteP2C    = shard.RouteP2C
	RouteSingle = shard.RouteSingle
)

// Service sentinel errors (use errors.Is).
var (
	// ErrQueueFull: the admission queue is at capacity (HTTP 429).
	ErrQueueFull = service.ErrQueueFull
	// ErrStopped: the service is draining and accepts no new work.
	ErrStopped = service.ErrStopped
)

// NewService builds one stopped scheduling loop; call Start on it.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// NewRouter partitions the fleet and builds one stopped service per
// shard behind a load-aware router; call Start on it.
func NewRouter(cfg RouterConfig) (*Router, error) { return shard.New(cfg) }

// NewAPIHandler mounts the versioned /v1 HTTP surface (plus /healthz
// and /metrics) on any ServiceAPI implementation.
var NewAPIHandler = service.NewHandler

// PartitionCluster splits a fleet into p disjoint sub-fleets,
// round-robin by server index (see the shard router).
var PartitionCluster = cluster.Partition

// NewECDF builds an empirical CDF (quantiles, means) over samples.
var NewECDF = stats.NewECDF
