// Package dollymp is the public API of the DollyMP reproduction: a
// multi-resource cluster scheduler with task cloning (Xu, Liu, Lau —
// ICPP '22) together with the simulation substrate, baseline schedulers
// and workload generators its evaluation needs.
//
// Quick start:
//
//	fleet := dollymp.Testbed30()
//	jobs := dollymp.MixedWorkload(100, 40, 1)
//	sched, _ := dollymp.NewScheduler(dollymp.KindDollyMP2)
//	res, err := dollymp.Simulate(dollymp.SimConfig{
//	    Cluster: fleet, Jobs: jobs, Scheduler: sched, Seed: 1,
//	})
//
// The exported names are aliases of the internal implementation packages,
// so the full method sets are available through them.
package dollymp

import (
	"fmt"
	"strings"

	"dollymp/internal/cluster"
	"dollymp/internal/core"
	"dollymp/internal/estimate"
	"dollymp/internal/resources"
	"dollymp/internal/scenario"
	"dollymp/internal/sched"
	"dollymp/internal/sched/capacity"
	"dollymp/internal/sched/carbyne"
	"dollymp/internal/sched/drf"
	"dollymp/internal/sched/random"
	"dollymp/internal/sched/srpt"
	"dollymp/internal/sched/svf"
	"dollymp/internal/sched/tetris"
	"dollymp/internal/sim"
	"dollymp/internal/stats"
	"dollymp/internal/trace"
	"dollymp/internal/verify"
	"dollymp/internal/workload"
	"dollymp/internal/yarn"
)

// Core model types.
type (
	// Resources is a CPU/memory demand or capacity vector.
	Resources = resources.Vector
	// Cluster is a heterogeneous server fleet.
	Cluster = cluster.Cluster
	// ServerSpec describes one server for NewCluster.
	ServerSpec = cluster.Spec
	// Job is a DAG of phases.
	Job = workload.Job
	// JobID identifies a job across the simulator and the service.
	JobID = workload.JobID
	// Phase is one stage of a job.
	Phase = workload.Phase
	// Scheduler is any scheduling policy the simulator can drive.
	Scheduler = sched.Scheduler
	// SimConfig configures a simulation run.
	SimConfig = sim.Config
	// Result is a completed run's metrics.
	Result = sim.Result
	// JobMetrics is one job's outcome.
	JobMetrics = sim.JobMetrics
	// DollyMP is the paper's scheduler; construct with NewDollyMP.
	DollyMP = core.Scheduler
	// FleetEvent injects a perturbation (slowdown, failure, restore)
	// into a simulation via SimConfig.Events.
	FleetEvent = sim.Event
	// ServerID identifies a server within a Cluster.
	ServerID = cluster.ServerID

	// The custom-scheduler extension point: implement Scheduler by
	// writing Schedule(ctx SchedulerContext) []Placement (see
	// examples/customsched). The aliases below name every type that
	// appears in the interface and its helpers.

	// SchedulerContext is the read-only view a policy receives at each
	// decision point.
	SchedulerContext = sched.Context
	// Placement asks the engine to launch one task copy on a server.
	Placement = sched.Placement
	// TaskRef names one task (job, phase, index).
	TaskRef = workload.TaskRef
	// PendingTask is one schedulable unit yielded by a JobCursor.
	PendingTask = sched.PendingTask
	// JobCursor lazily enumerates a job's schedulable tasks.
	JobCursor = sched.JobCursor
	// FitTracker overlays tentative placements on cluster capacity
	// while planning a batch.
	FitTracker = sched.FitTracker
	// JobState is the scheduling view of one job.
	JobState = workload.JobState
)

// Helpers for custom schedulers, re-exported from the internal sched
// package.
var (
	NewJobCursor  = sched.NewJobCursor
	NewFitTracker = sched.NewFitTracker
)

// Fleet perturbation kinds for FleetEvent.
const (
	EventSlowdown = sim.EventSlowdown
	EventRecover  = sim.EventRecover
	EventFail     = sim.EventFail
	EventRestore  = sim.EventRestore
)

// Vec builds a resource vector from milli-cores and MiB; Cores from
// whole cores and GiB.
var (
	Vec   = resources.Vec
	Cores = resources.Cores
)

// NewCluster builds a fleet from explicit server specs.
func NewCluster(specs []ServerSpec) (*Cluster, error) { return cluster.New(specs) }

// Testbed30 is the paper's 30-node, 328-core private cluster (§6.1).
func Testbed30() *Cluster { return cluster.Testbed30() }

// LargeFleet is an n-server heterogeneous fleet in the style of the
// §6.3 trace-driven simulations.
func LargeFleet(n int, seed uint64) *Cluster { return cluster.LargeFleet(n, seed) }

// NewDollyMP builds the DollyMP scheduler. Options: WithClones (0–3,
// default 2), WithVarianceFactor (default 1.5), WithCloneBudget
// (default 0.3).
func NewDollyMP(opts ...core.Option) (*DollyMP, error) { return core.New(opts...) }

// Scheduler construction options, re-exported from the core package.
var (
	WithClones             = core.WithClones
	WithVarianceFactor     = core.WithVarianceFactor
	WithCloneBudget        = core.WithCloneBudget
	WithStragglerAvoidance = core.WithStragglerAvoidance
	WithEstimation         = core.WithEstimation
	WithSpeculation        = core.WithSpeculation
)

// EstimationConfig tunes the §5.2 Application-Master statistics
// estimation enabled by WithEstimation.
type EstimationConfig = estimate.Config

// Kind names a built-in scheduling policy.
type Kind string

// Built-in schedulers: DollyMP variants and the evaluation's baselines.
const (
	KindDollyMP0 Kind = "dollymp0"
	KindDollyMP1 Kind = "dollymp1"
	KindDollyMP2 Kind = "dollymp2"
	KindDollyMP3 Kind = "dollymp3"
	// KindYARN is the §5.2 two-level variant: DollyMP priorities at the
	// Resource Manager, per-job Application Masters binding tasks and
	// clones with data-locality preference.
	KindYARN     Kind = "yarn-dollymp2"
	KindCapacity Kind = "capacity"
	KindDRF      Kind = "drf"
	KindTetris   Kind = "tetris"
	KindCarbyne  Kind = "carbyne"
	KindSRPT     Kind = "srpt"
	KindSVF      Kind = "svf"
	// KindRandom places tasks FIFO on random fitting servers — the
	// calibration baseline any real policy must beat.
	KindRandom Kind = "random"
)

// Kinds lists every built-in scheduler name.
func Kinds() []Kind {
	return []Kind{
		KindDollyMP0, KindDollyMP1, KindDollyMP2, KindDollyMP3, KindYARN,
		KindCapacity, KindDRF, KindTetris, KindCarbyne, KindSRPT, KindSVF,
		KindRandom,
	}
}

// NewScheduler builds a built-in scheduler by name with the paper's
// default parameters (r = 1.5, δ = 0.3).
func NewScheduler(kind Kind) (Scheduler, error) {
	switch kind {
	case KindDollyMP0:
		return core.New(core.WithClones(0))
	case KindDollyMP1:
		return core.New(core.WithClones(1))
	case KindDollyMP2:
		return core.New(core.WithClones(2))
	case KindDollyMP3:
		return core.New(core.WithClones(3))
	case KindYARN:
		return yarn.New(), nil
	case KindCapacity:
		return capacity.Default(), nil
	case KindDRF:
		return &drf.Scheduler{}, nil
	case KindTetris:
		return &tetris.Scheduler{R: 1.5}, nil
	case KindCarbyne:
		return &carbyne.Scheduler{R: 1.5}, nil
	case KindSRPT:
		return &srpt.Scheduler{R: 1.5}, nil
	case KindSVF:
		return &svf.Scheduler{R: 1.5}, nil
	case KindRandom:
		return random.New(1), nil
	default:
		return nil, fmt.Errorf("dollymp: unknown scheduler %q (valid: %s)",
			kind, strings.Join(SchedulerNames(), ", "))
	}
}

// Simulate runs one simulation to completion.
func Simulate(cfg SimConfig) (*Result, error) {
	e, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// Scenario is a self-contained, serializable simulation definition:
// fleet, workload, fault schedule and engine knobs. Build one, Write it
// to JSON, and Run it under any scheduler.
type Scenario = scenario.Scenario

// ReadScenario parses and validates a scenario file.
var ReadScenario = scenario.Read

// FleetSpecs extracts a cluster's server specs for embedding in a
// Scenario.
var FleetSpecs = scenario.Specs

// VerifyTrace certifies a recorded run (SimConfig.RecordTrace) against
// the paper's model constraints: per-server capacity (Eq. 5), phase
// precedence (Eq. 7) and completion accounting (Eqs. 6/8).
func VerifyTrace(res *Result, fleet *Cluster, jobs []*Job) error {
	return verify.Check(res.Trace, fleet, jobs)
}

// MixedWorkload builds the §6.2 deployment suite: n jobs, half WordCount
// (10 GB) and half PageRank (10 GB / 1 GB), arriving gapSlots apart.
func MixedWorkload(n int, gapSlots int64, seed uint64) []*Job {
	return trace.MixedDeployment(n,
		trace.Arrival{Kind: trace.FixedInterval, MeanGap: float64(gapSlots)}, seed)
}

// GoogleWorkload builds the §6.3 synthetic Google-trace-like workload:
// n jobs with heavy-tailed sizes and straggler-prone phases, Poisson
// arrivals with the given mean gap in slots.
func GoogleWorkload(n int, meanGapSlots float64, seed uint64) []*Job {
	return trace.DefaultGoogleLike(n, meanGapSlots, seed).Generate()
}

// WordCountJob and PageRankJob build single application jobs from the
// §6.2 templates; the RNG seed individualizes task statistics.
func WordCountJob(id int64, arrival int64, inputGB float64, seed uint64) *Job {
	return trace.WordCount(workload.JobID(id), arrival, inputGB, rngFor(seed))
}

// PageRankJob builds one PageRank job (see WordCountJob).
func PageRankJob(id int64, arrival int64, inputGB float64, seed uint64) *Job {
	return trace.PageRank(workload.JobID(id), arrival, inputGB, rngFor(seed))
}

// TeraSortJob builds one three-phase TeraSort job (sample → partition →
// sort).
func TeraSortJob(id int64, arrival int64, inputGB float64, seed uint64) *Job {
	return trace.TeraSort(workload.JobID(id), arrival, inputGB, rngFor(seed))
}

// MLIterationJob builds one diamond-DAG training iteration (load →
// parallel gradient shards → aggregate).
func MLIterationJob(id int64, arrival int64, scale float64, seed uint64) *Job {
	return trace.MLIteration(workload.JobID(id), arrival, scale, rngFor(seed))
}

func rngFor(seed uint64) *stats.RNG { return stats.NewRNG(seed) }
