package dollymp_test

import (
	"bytes"
	"testing"

	"dollymp"
)

func TestScenarioRoundTripViaFacade(t *testing.T) {
	sc := &dollymp.Scenario{
		Version: 1,
		Name:    "facade",
		Fleet:   dollymp.FleetSpecs(dollymp.Testbed30()),
		Jobs:    dollymp.MixedWorkload(6, 5, 2),
		Seed:    4,
	}
	var buf bytes.Buffer
	if err := sc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := dollymp.ReadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := dollymp.NewScheduler(dollymp.KindDollyMP2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := got.Run(policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 6 {
		t.Fatalf("completed %d/6", len(res.Jobs))
	}
}

func TestVerifyTraceViaFacade(t *testing.T) {
	fleet := dollymp.Testbed30()
	jobs := dollymp.MixedWorkload(6, 5, 3)
	policy, err := dollymp.NewScheduler(dollymp.KindYARN)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dollymp.Simulate(dollymp.SimConfig{
		Cluster: fleet, Jobs: jobs, Scheduler: policy, Seed: 5, RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dollymp.VerifyTrace(res, dollymp.Testbed30(), jobs); err != nil {
		t.Fatalf("certification failed: %v", err)
	}
	// A corrupted trace must fail certification.
	res.Trace = res.Trace[:len(res.Trace)-1]
	if err := dollymp.VerifyTrace(res, dollymp.Testbed30(), jobs); err == nil {
		t.Fatal("truncated trace certified")
	}
}

func TestRandomKindBeatenByDollyMP(t *testing.T) {
	jobs := dollymp.MixedWorkload(20, 4, 6)
	run := func(kind dollymp.Kind) int64 {
		s, err := dollymp.NewScheduler(kind)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dollymp.Simulate(dollymp.SimConfig{
			Cluster: dollymp.Testbed30(), Jobs: jobs, Scheduler: s, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalFlowtime()
	}
	if d, r := run(dollymp.KindDollyMP2), run(dollymp.KindRandom); d >= r {
		t.Fatalf("dollymp2 (%d) should beat random (%d)", d, r)
	}
}

func TestEstimationKindViaFacade(t *testing.T) {
	s, err := dollymp.NewDollyMP(dollymp.WithEstimation(dollymp.EstimationConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dollymp.Simulate(dollymp.SimConfig{
		Cluster:   dollymp.Testbed30(),
		Jobs:      dollymp.MixedWorkload(8, 5, 9),
		Scheduler: s,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 8 {
		t.Fatalf("completed %d/8", len(res.Jobs))
	}
}

// anti is a minimal custom scheduler implemented purely against the
// public API: FIFO, first-fit.
type anti struct{}

func (anti) Name() string { return "custom-fifo" }

func (anti) Schedule(ctx dollymp.SchedulerContext) []dollymp.Placement {
	ft := dollymp.NewFitTracker(ctx.Cluster())
	var out []dollymp.Placement
	for _, js := range ctx.Jobs() {
		cur := dollymp.NewJobCursor(js)
		for {
			pt, ok := cur.Peek()
			if !ok {
				break
			}
			srv, ok := ft.BestFit(pt.Demand)
			if !ok {
				break
			}
			ft.Place(srv, pt.Demand)
			out = append(out, dollymp.Placement{Ref: pt.Ref, Server: srv})
			cur.Advance()
		}
	}
	return out
}

func TestCustomSchedulerViaPublicAPI(t *testing.T) {
	jobs := dollymp.MixedWorkload(8, 5, 21)
	res, err := dollymp.Simulate(dollymp.SimConfig{
		Cluster:     dollymp.Testbed30(),
		Jobs:        jobs,
		Scheduler:   anti{},
		Seed:        21,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 8 {
		t.Fatalf("completed %d/8", len(res.Jobs))
	}
	if err := dollymp.VerifyTrace(res, dollymp.Testbed30(), jobs); err != nil {
		t.Fatalf("custom scheduler trace failed certification: %v", err)
	}
}
