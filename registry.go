package dollymp

// The name registry shared by every command-line entry point
// (dollymp-sim, dollympd, dollymp-load): one place maps -scheduler,
// -workload and -fleet strings to constructors, so the binaries stay in
// agreement and an unknown name can be reported with the full list of
// valid ones.

import (
	"fmt"
	"strings"

	"dollymp/internal/trace"
)

// SchedulerNames lists every built-in scheduler name accepted by
// NewScheduler, in presentation order.
func SchedulerNames() []string {
	kinds := Kinds()
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = string(k)
	}
	return out
}

// WorkloadNames lists every generator name accepted by NewWorkload.
func WorkloadNames() []string {
	return []string{"mixed", "google", "pagerank", "wordcount", "terasort", "mliter"}
}

// NewWorkload builds n jobs of the named synthetic workload with the
// given inter-arrival gap in slots. An unknown name errs with the list
// of valid ones.
func NewWorkload(name string, n int, gap float64, seed uint64) ([]*Job, error) {
	switch name {
	case "mixed":
		return MixedWorkload(n, int64(gap), seed), nil
	case "google":
		return GoogleWorkload(n, gap, seed), nil
	case "pagerank", "wordcount":
		return trace.Homogeneous(name, n, 10,
			trace.Arrival{Kind: trace.FixedInterval, MeanGap: gap}, seed)
	case "terasort":
		jobs := make([]*Job, n)
		for i := range jobs {
			jobs[i] = TeraSortJob(int64(i), int64(float64(i)*gap), 10, seed+uint64(i))
		}
		return jobs, nil
	case "mliter":
		jobs := make([]*Job, n)
		for i := range jobs {
			jobs[i] = MLIterationJob(int64(i), int64(float64(i)*gap), 3, seed+uint64(i))
		}
		return jobs, nil
	default:
		return nil, fmt.Errorf("dollymp: unknown workload %q (valid: %s)",
			name, strings.Join(WorkloadNames(), ", "))
	}
}

// NewFleet parses a fleet spec — "testbed30" for the paper's private
// cluster, or a positive server count for a synthetic large fleet.
func NewFleet(spec string, seed uint64) (*Cluster, error) {
	if spec == "testbed30" {
		return Testbed30(), nil
	}
	var n int
	if _, err := fmt.Sscanf(spec, "%d", &n); err != nil || n <= 0 {
		return nil, fmt.Errorf("dollymp: invalid fleet %q (valid: testbed30, or a positive server count)", spec)
	}
	return LargeFleet(n, seed), nil
}
