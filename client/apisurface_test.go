package client

// The exported-surface guard: the client package is a public SDK, so
// its API is frozen in api.txt and any drift — a renamed method, a new
// exported helper, a removed option — fails this test until api.txt is
// deliberately updated in the same change. Regenerate with:
//
//	APISURFACE_UPDATE=1 go test ./client -run TestExportedSurface

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// exportedSurface renders one line per exported declaration: funcs,
// methods (with receiver), types, struct fields, consts and vars.
func exportedSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	add := func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		for fname, f := range pkg.Files {
			if strings.HasSuffix(fname, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					if d.Recv == nil {
						add("func %s", d.Name.Name)
						continue
					}
					recv := d.Recv.List[0].Type
					star := ""
					if se, ok := recv.(*ast.StarExpr); ok {
						recv = se.X
						star = "*"
					}
					id, ok := recv.(*ast.Ident)
					if !ok || !id.IsExported() {
						continue
					}
					add("method (%s%s) %s", star, id.Name, d.Name.Name)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if !s.Name.IsExported() {
								continue
							}
							kind := "type"
							if st, ok := s.Type.(*ast.StructType); ok {
								kind = "struct"
								for _, fld := range st.Fields.List {
									for _, fn := range fld.Names {
										if fn.IsExported() {
											add("field %s.%s", s.Name.Name, fn.Name)
										}
									}
								}
							}
							add("%s %s", kind, s.Name.Name)
						case *ast.ValueSpec:
							for _, vn := range s.Names {
								if vn.IsExported() {
									add("%s %s", strings.ToLower(d.Tok.String()), vn.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func TestExportedSurface(t *testing.T) {
	got := strings.Join(exportedSurface(t), "\n") + "\n"
	if os.Getenv("APISURFACE_UPDATE") == "1" {
		if err := os.WriteFile("api.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("read api.txt: %v (run with APISURFACE_UPDATE=1 to create it)", err)
	}
	if got != string(want) {
		t.Errorf("exported surface drifted from api.txt.\n--- api.txt\n%s\n--- current\n%s\n"+
			"If the change is intentional, regenerate: APISURFACE_UPDATE=1 go test ./client -run TestExportedSurface",
			want, got)
	}
}
