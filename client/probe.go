package client

// The error-surface probe: every /v1 failure must be the uniform
// envelope {"error":{"code","message"}} with the right machine-readable
// code, on a plain daemon, a sharded router, and the federation
// gateway alike. scripts/smoke.sh runs this (via dollymp-load -probe)
// instead of hand-rolled curl checks. The probe always addresses the
// base URL directly — it is certifying the endpoint it was pointed at,
// not the lightest member behind it.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// ProbeReport summarizes a successful probe.
type ProbeReport struct {
	// EnvelopeChecks counts the error surfaces verified envelope-shaped.
	EnvelopeChecks int
	// Shards is how many shards /v1/shards reported.
	Shards int
	// AdmissionPolicy is the policy /v1/admission reported ("none"
	// when no edge admission is configured).
	AdmissionPolicy string
}

// Probe exercises the deployment's error surface and topology
// endpoints: malformed submissions, missing jobs, bad filters, unknown
// routes and wrong methods must all answer the uniform envelope with
// the right code; /readyz must serve 200; /v1/jobs must paginate;
// /v1/shards must report a coherent topology (exactly expectShards
// entries when expectShards > 0); and /v1/admission must report the
// policy view with a deterministic 405 on writes.
func (c *Client) Probe(ctx context.Context, expectShards int) (ProbeReport, error) {
	var rep ProbeReport
	expectEnvelope := func(desc string, resp *http.Response, err error, wantStatus int, wantCode string) (*http.Response, error) {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", desc, err)
		}
		out, err := readBody(resp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", desc, err)
		}
		if resp.StatusCode != wantStatus {
			return nil, fmt.Errorf("%s: status %d, want %d (%s)", desc, resp.StatusCode, wantStatus, strings.TrimSpace(string(out)))
		}
		e := decodeError(resp, out)
		if e.Code == "" {
			return nil, fmt.Errorf("%s: response is not envelope-shaped: %s", desc, strings.TrimSpace(string(out)))
		}
		if e.Code != wantCode {
			return nil, fmt.Errorf("%s: code %q, want %q", desc, e.Code, wantCode)
		}
		if e.Message == "" {
			return nil, fmt.Errorf("%s: envelope without message", desc)
		}
		rep.EnvelopeChecks++
		return resp, nil
	}

	resp, err := c.post(ctx, c.base+"/v1/jobs", []byte("not json"))
	if _, err := expectEnvelope("malformed submit", resp, err, http.StatusBadRequest, CodeInvalidArgument); err != nil {
		return rep, err
	}
	resp, err = c.get(ctx, c.base+"/v1/jobs/999999999")
	if _, err := expectEnvelope("missing job", resp, err, http.StatusNotFound, CodeNotFound); err != nil {
		return rep, err
	}
	resp, err = c.get(ctx, c.base+"/v1/jobs/xyzzy")
	if _, err := expectEnvelope("malformed job id", resp, err, http.StatusBadRequest, CodeInvalidArgument); err != nil {
		return rep, err
	}
	resp, err = c.get(ctx, c.base+"/v1/jobs?state=bogus")
	if _, err := expectEnvelope("bad state filter", resp, err, http.StatusBadRequest, CodeInvalidArgument); err != nil {
		return rep, err
	}
	resp, err = c.get(ctx, c.base+"/v2/nope")
	if _, err := expectEnvelope("unknown route", resp, err, http.StatusNotFound, CodeNotFound); err != nil {
		return rep, err
	}
	resp, err = c.do(ctx, http.MethodDelete, c.base+"/v1/jobs")
	resp, err = expectEnvelope("method mismatch", resp, err, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	if err != nil {
		return rep, err
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, http.MethodPost) {
		return rep, fmt.Errorf("method mismatch: Allow %q does not offer POST", allow)
	}

	// The admission view must answer on every deployment shape — policy
	// or not — and its write-rejection must carry a deterministic Allow
	// (MuxFor sorts it, so gateway and member answer byte-identically).
	resp, err = c.do(ctx, http.MethodDelete, c.base+"/v1/admission")
	resp, err = expectEnvelope("admission method mismatch", resp, err, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	if err != nil {
		return rep, err
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		return rep, fmt.Errorf("admission method mismatch: Allow %q, want %q", allow, http.MethodGet)
	}
	adm, err := c.Admission(ctx)
	if err != nil {
		return rep, fmt.Errorf("admission view: %w", err)
	}
	if adm.Policy == "" {
		return rep, fmt.Errorf("admission view: empty policy name")
	}
	rep.AdmissionPolicy = adm.Policy

	// Readiness: a serving daemon — or a gateway whose live members are
	// all serving — answers /readyz 200 once replay and loops are up.
	if err := c.Ready(ctx); err != nil {
		return rep, fmt.Errorf("readyz: %w", err)
	}

	// The happy-path list must paginate.
	resp, err = c.get(ctx, c.base+"/v1/jobs?limit=1")
	if err != nil {
		return rep, fmt.Errorf("list jobs: %w", err)
	}
	out, err := readBody(resp)
	if err != nil {
		return rep, fmt.Errorf("list jobs: %w", err)
	}
	var list JobList
	if err := json.Unmarshal(out, &list); err != nil || resp.StatusCode != http.StatusOK || list.Limit != 1 {
		return rep, fmt.Errorf("list jobs: status %d, limit %d, err %v", resp.StatusCode, list.Limit, err)
	}

	shards, err := c.Shards(ctx)
	if err != nil {
		return rep, fmt.Errorf("shards: %w", err)
	}
	if len(shards) == 0 {
		return rep, fmt.Errorf("shards: empty topology")
	}
	if expectShards > 0 && len(shards) != expectShards {
		return rep, fmt.Errorf("shards: daemon reports %d, want %d", len(shards), expectShards)
	}
	for i, st := range shards {
		if st.Shard != i {
			return rep, fmt.Errorf("shards: entry %d reports index %d", i, st.Shard)
		}
	}
	rep.Shards = len(shards)
	return rep, nil
}

func (c *Client) do(ctx context.Context, method, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, nil)
	if err != nil {
		return nil, err
	}
	return c.hc.Do(req)
}
