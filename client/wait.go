package client

// Completion waiting and metrics scraping: the e2e certification layer
// dollymp-load and scripts/smoke.sh run on. Every poll strictly parses
// the Prometheus exposition, so waiting doubles as a format regression
// test, and the final check cross-references counters against each
// other — completed against the JCT histogram, submitted against what
// was sent — rather than trusting any one number.

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"dollymp/internal/metrics"
)

// WaitConfig tells WaitDrained what "done" means.
type WaitConfig struct {
	// Jobs is how many completions to wait for.
	Jobs int64
	// MinSteals, when > 0, additionally requires the rebalancer's
	// migration counter to have reached it (the skewed smoke pass uses
	// this to prove stealing actually fired).
	MinSteals int64
	// MinReplayed, when > 0, additionally requires the journal replay
	// gauge to have reached it (the kill-and-restart pass uses this to
	// prove the daemon recovered from its journal, not started empty).
	MinReplayed int64
	// Poll is the scrape period (0 takes DefaultPoll).
	Poll time.Duration
}

// WaitStats is what the deployment's counters said when WaitDrained
// returned.
type WaitStats struct {
	Completed int64
	Submitted int64
	Stolen    int64
	Replayed  int64
	Denied    int64
}

// WaitDrained polls /metrics until the completed counter reaches
// cfg.Jobs, then cross-checks the scrape: the JCT histogram count must
// equal the completed counter, the submitted counter must cover every
// job sent, and the optional steal/replay floors must hold. The ctx
// deadline is the overall timeout.
func (c *Client) WaitDrained(ctx context.Context, cfg WaitConfig) (WaitStats, error) {
	poll := cfg.Poll
	if poll <= 0 {
		poll = DefaultPoll
	}
	var st WaitStats
	for {
		sums, err := c.MetricSums(ctx)
		if err != nil {
			return st, err
		}
		st = WaitStats{
			Completed: int64(sums["dollymp_jobs_completed_total"]),
			Submitted: int64(sums["dollymp_jobs_submitted_total"]),
			Stolen:    int64(sums["dollymp_router_jobs_stolen_total"]),
			Replayed:  int64(sums["dollymp_journal_replayed_jobs"]),
			Denied:    int64(sums["dollymp_jobs_denied_total"]),
		}
		if st.Completed >= cfg.Jobs {
			if got := int64(sums["dollymp_job_completion_slots_count"]); got != st.Completed {
				return st, fmt.Errorf("JCT histogram has %d observations, completed counter says %d", got, st.Completed)
			}
			if st.Submitted < cfg.Jobs {
				return st, fmt.Errorf("submitted counter %d < %d jobs sent", st.Submitted, cfg.Jobs)
			}
			if cfg.MinSteals > 0 && st.Stolen < cfg.MinSteals {
				return st, fmt.Errorf("rebalancer migrated %d jobs, want >= %d", st.Stolen, cfg.MinSteals)
			}
			if cfg.MinReplayed > 0 && st.Replayed < cfg.MinReplayed {
				return st, fmt.Errorf("journal replayed %d jobs, want >= %d", st.Replayed, cfg.MinReplayed)
			}
			return st, nil
		}
		if err := sleep(ctx, poll); err != nil {
			return st, fmt.Errorf("%d of %d jobs completed: %w", st.Completed, cfg.Jobs, err)
		}
	}
}

// MetricSums fetches and strictly parses the Prometheus exposition,
// collapsing labelled series into per-family totals: a sharded daemon
// exposes dollymp_jobs_completed_total{shard="k"} per shard, and
// callers care about the deployment-wide sum. A parse error fails the
// call, making every poll a format regression test.
func (c *Client) MetricSums(ctx context.Context) (map[string]float64, error) {
	resp, err := c.get(ctx, c.base+"/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	samples, err := metrics.ParsePromText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("/metrics output invalid: %w", err)
	}
	sums := make(map[string]float64)
	for _, s := range samples {
		sums[s.Name] += s.Value
	}
	return sums, nil
}
