package client

// Shard-aware submission routing. Against a plain daemon or sharded
// router the base URL is the only endpoint and nothing here runs more
// than once. Against a federation gateway the client discovers the
// member topology (GET /v1/federation — a plain daemon answers 404,
// which is cached as "no federation here") plus the global per-shard
// queue depths (GET /v1/shards), sums each member's depth over the
// residue classes it owns, and submits straight to the lightest
// member — the same decision the gateway's round-robin can only
// approximate, minus one network hop. The cache expires on the
// topology TTL; a member that dies inside the window is caught by the
// transport-failure fallback in SubmitBatch, which drops the cache and
// retries through the gateway.

import (
	"context"
	"encoding/json"
	"net/http"
	"time"
)

// MemberView is one federation member as the gateway reports it.
type MemberView struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Residues []int  `json:"residues"`
	Alive    bool   `json:"alive"`
	// AdoptedBy names the survivor that absorbed this member's journal
	// after its death, if any.
	AdoptedBy string `json:"adopted_by,omitempty"`
}

// FederationView is the GET /v1/federation response: the gateway's
// membership map and liveness view.
type FederationView struct {
	Shards  int          `json:"shards"`
	Members []MemberView `json:"members"`
}

// Federation returns the gateway's membership view, or (nil, nil) when
// the base URL is a plain daemon (404 on /v1/federation).
func (c *Client) Federation(ctx context.Context) (*FederationView, error) {
	resp, err := c.get(ctx, c.base+"/v1/federation")
	if err != nil {
		return nil, err
	}
	body, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp, body)
	}
	var fv FederationView
	if err := json.Unmarshal(body, &fv); err != nil {
		return nil, err
	}
	return &fv, nil
}

// topology is the cached routing view.
type topology struct {
	fetched time.Time
	plain   bool // base is not a federation gateway
	members []memberTarget
}

// memberTarget is one live member with its summed queue load.
type memberTarget struct {
	url  string
	load int
}

// submitTarget returns the URL to POST the next batch to: the lightest
// live member when the base is a gateway and direct routing is on, the
// base URL otherwise. Discovery failures degrade to the base URL — the
// gateway always works, direct routing is only an optimization.
func (c *Client) submitTarget(ctx context.Context) string {
	if c.gatewayOnly {
		return c.base
	}
	c.mu.Lock()
	topo := c.topo
	c.mu.Unlock()
	if topo == nil || time.Since(topo.fetched) > c.topoTTL {
		topo = c.refreshTopology(ctx)
		c.mu.Lock()
		c.topo = topo
		c.mu.Unlock()
	}
	if topo.plain || len(topo.members) == 0 {
		return c.base
	}
	best := topo.members[0]
	for _, m := range topo.members[1:] {
		if m.load < best.load {
			best = m
		}
	}
	return best.url
}

// invalidateTopology drops the cache after a direct submission hit a
// dead member; the next submission rediscovers.
func (c *Client) invalidateTopology() {
	c.mu.Lock()
	c.topo = nil
	c.mu.Unlock()
}

// refreshTopology rebuilds the routing view. Never fails: any error
// yields a "plain" view that routes through the base URL until the TTL
// expires and discovery runs again.
func (c *Client) refreshTopology(ctx context.Context) *topology {
	topo := &topology{fetched: time.Now(), plain: true}
	fv, err := c.Federation(ctx)
	if err != nil || fv == nil || len(fv.Members) == 0 {
		return topo
	}
	// Global residue -> queue depth, through the gateway's federated
	// table (rows of dead members are absent and count as zero).
	depth := map[int]int{}
	if shards, err := c.Shards(ctx); err == nil {
		for _, st := range shards {
			depth[st.Shard] = st.QueueDepth
		}
	}
	for _, m := range fv.Members {
		if !m.Alive || m.URL == "" {
			continue
		}
		t := memberTarget{url: m.URL}
		for _, res := range m.Residues {
			t.load += depth[res]
		}
		topo.members = append(topo.members, t)
	}
	topo.plain = len(topo.members) == 0
	return topo
}
