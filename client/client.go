// Package client is the supported Go SDK for a running dollymp
// deployment — a single daemon, a sharded router, or a federation
// gateway; the caller does not need to know which. It speaks the /v1
// surface, branches on the machine-readable error envelope rather than
// status text, retries backpressure with the server's own Retry-After
// hints, resubmits only the rejected tail of a partially accepted
// batch, and — against a federation gateway — discovers the member
// topology and submits straight to the lightest owning member, skipping
// the gateway hop.
//
//	c := client.New("http://127.0.0.1:8080")
//	ids, err := c.SubmitBatch(ctx, jobs)
//	info, err := c.Job(ctx, ids[0])
//	stats, err := c.WaitDrained(ctx, client.WaitConfig{Jobs: int64(len(ids))})
//
// Retry policy: "queue_full" (backpressure), "admission_denied" (an
// edge admission policy refusing work right now), and "unavailable" (a
// gateway momentarily without a live member during a takeover) are the
// retryable codes; a bare 429 from a pre-envelope daemon gets the same
// treatment. Every other code — including 5xx-carried "draining" and
// "internal" — aborts with the code surfaced in the *Error.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dollymp"
	"dollymp/internal/service"
	"dollymp/internal/trace"
)

// Error codes carried in the error envelope, re-exported so callers
// branch without importing internal packages. Unknown codes are
// non-retryable.
const (
	CodeInvalidArgument  = service.CodeInvalidArgument
	CodeNotFound         = service.CodeNotFound
	CodeQueueFull        = service.CodeQueueFull
	CodeAdmissionDenied  = service.CodeAdmissionDenied
	CodeDraining         = service.CodeDraining
	CodeInternal         = service.CodeInternal
	CodeMethodNotAllowed = service.CodeMethodNotAllowed
	CodeNotReady         = service.CodeNotReady
	CodeUnavailable      = service.CodeUnavailable
	CodeConflict         = service.CodeConflict
)

// Defaults.
const (
	// DefaultTopologyTTL bounds how stale the cached federation
	// topology (membership and per-shard queue depths) may get before a
	// submission refreshes it.
	DefaultTopologyTTL = 2 * time.Second
	// DefaultBackoff is the retry sleep when a retryable rejection
	// carries no Retry-After hint (pre-envelope daemons, 502s).
	DefaultBackoff = 5 * time.Millisecond
	// DefaultPoll is WaitDrained's /metrics polling period.
	DefaultPoll = 50 * time.Millisecond
)

// Error is a non-2xx /v1 answer: the envelope's machine-readable code,
// reason and retry hint, plus the accepted prefix of a partially
// accepted batch. A response that was not envelope-shaped keeps Code
// empty and the raw body in Message.
type Error struct {
	// Status is the HTTP status code.
	Status int
	// Code is the envelope's machine-readable error code ("" when the
	// response carried no envelope).
	Code string
	// Message is the envelope's human-readable message, or the raw body.
	Message string
	// Reason refines an admission_denied 429 (e.g. "rate_limited",
	// "tenant_over_weight").
	Reason string
	// RetryAfter is the server's backoff hint: the envelope's precise
	// retry_after_ms when present, else the Retry-After header.
	RetryAfter time.Duration
	// Accepted holds the IDs of the accepted prefix when a batch was
	// cut off mid-trace; Rejected counts the refused tail.
	Accepted []dollymp.JobID
	Rejected int
}

func (e *Error) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("status %d (no error envelope): %s", e.Status, e.Message)
	}
	if e.Reason != "" {
		return fmt.Sprintf("status %d, code %s (%s): %s", e.Status, e.Code, e.Reason, e.Message)
	}
	return fmt.Sprintf("status %d, code %s: %s", e.Status, e.Code, e.Message)
}

// Retryable reports whether the rejection is about NOW rather than
// about the request: backpressure, an admission denial, a gateway
// between members — or a bare 429 from a pre-envelope daemon.
func (e *Error) Retryable() bool {
	switch e.Code {
	case CodeQueueFull, CodeAdmissionDenied, CodeUnavailable:
		return true
	case "":
		return e.Status == http.StatusTooManyRequests
	}
	return false
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (the default has a 30s
// timeout).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTopologyTTL tunes how long discovered federation topology is
// trusted before a refresh; d <= 0 keeps the default.
func WithTopologyTTL(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.topoTTL = d
		}
	}
}

// WithGatewayOnly disables direct-to-member submission: everything
// goes through the configured base URL even against a federation
// gateway. Use it when member URLs are not reachable from the client,
// or when the gateway runs an edge admission policy that direct
// submission would bypass.
func WithGatewayOnly() Option { return func(c *Client) { c.gatewayOnly = true } }

// WithBackoff sets the retry sleep used when the server provides no
// Retry-After hint; d <= 0 keeps the default.
func WithBackoff(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.backoff = d
		}
	}
}

// Client talks to one dollymp deployment. It is safe for concurrent
// use; the topology cache and retry counter are shared across
// goroutines.
type Client struct {
	base        string
	hc          *http.Client
	topoTTL     time.Duration
	gatewayOnly bool
	backoff     time.Duration

	retries atomic.Int64

	mu   sync.Mutex
	topo *topology
}

// New builds a client for the deployment at baseURL (trailing slash
// tolerated). No request is made until the first call.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      &http.Client{Timeout: 30 * time.Second},
		topoTTL: DefaultTopologyTTL,
		backoff: DefaultBackoff,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the deployment URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// Retries returns how many retryable rejections (queue_full,
// admission_denied, unavailable) the client has absorbed so far.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Submit submits one job and returns its service-assigned ID, retrying
// backpressure and admission denials until ctx expires.
func (c *Client) Submit(ctx context.Context, j *dollymp.Job) (dollymp.JobID, error) {
	ids, err := c.SubmitBatch(ctx, []*dollymp.Job{j})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// SubmitBatch submits jobs in one POST (a single job as raw JSON, more
// as a v1 trace body) and returns the service-assigned IDs in
// submission order. Retryable rejections back off by the server's
// Retry-After hint and resubmit; a batch cut off mid-trace resubmits
// only the rejected tail — the envelope's accepted IDs say how far the
// daemon got, and resubmitting those jobs would duplicate them. The
// returned IDs include partial progress even on error.
func (c *Client) SubmitBatch(ctx context.Context, jobs []*dollymp.Job) ([]dollymp.JobID, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("client: empty batch")
	}
	var ids []dollymp.JobID
	pending := jobs
	useBase := false
	for {
		body, err := encodeBatch(pending)
		if err != nil {
			return ids, err
		}
		target := c.base
		if !useBase {
			target = c.submitTarget(ctx)
		}
		resp, err := c.post(ctx, target+"/v1/jobs", body)
		if err != nil {
			if target != c.base {
				// The member went away between topology refreshes: drop
				// the cache and fall back to the gateway, which routes
				// around dead members itself.
				c.invalidateTopology()
				useBase = true
				continue
			}
			return ids, err
		}
		out, rerr := readBody(resp)
		if rerr != nil {
			return ids, rerr
		}
		if resp.StatusCode == http.StatusAccepted {
			var sr struct {
				IDs []dollymp.JobID `json:"ids"`
			}
			if err := json.Unmarshal(out, &sr); err != nil {
				return ids, fmt.Errorf("client: decode submit response: %w", err)
			}
			return append(ids, sr.IDs...), nil
		}
		apiErr := decodeError(resp, out)
		if !apiErr.Retryable() {
			return ids, apiErr
		}
		if n := len(apiErr.Accepted); n > 0 && n < len(pending) {
			ids = append(ids, apiErr.Accepted...)
			pending = pending[n:]
		}
		c.retries.Add(1)
		if err := sleep(ctx, c.backoffFor(apiErr)); err != nil {
			return ids, fmt.Errorf("%w (last rejection: %v)", err, apiErr)
		}
	}
}

// backoffFor prefers the server's hint over the client default.
func (c *Client) backoffFor(e *Error) time.Duration {
	if e.RetryAfter > 0 {
		return e.RetryAfter
	}
	return c.backoff
}

func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// encodeBatch renders a submission body: raw job JSON for one job, a
// v1 trace file for several (the endpoint accepts both).
func encodeBatch(jobs []*dollymp.Job) ([]byte, error) {
	if len(jobs) == 1 {
		return json.Marshal(jobs[0])
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, jobs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Job returns one job's lifecycle record; a missing ID is an *Error
// with CodeNotFound.
func (c *Client) Job(ctx context.Context, id dollymp.JobID) (dollymp.JobInfo, error) {
	var info dollymp.JobInfo
	err := c.getJSON(ctx, "/v1/jobs/"+strconv.FormatInt(int64(id), 10), &info)
	return info, err
}

// JobQuery filters and paginates Jobs.
type JobQuery struct {
	// State filters by lifecycle state (queued, admitted, running,
	// completed); empty matches all.
	State string
	// Tenant filters by the jobs' tenant label; empty matches all.
	Tenant string
	// Limit and Offset paginate (Limit 0 takes the server default).
	Limit  int
	Offset int
}

// JobList is one page of lifecycle records.
type JobList struct {
	Jobs []dollymp.JobInfo `json:"jobs"`
	// Total counts jobs matching the filter before pagination.
	Total  int `json:"total"`
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
}

// Jobs lists lifecycle records matching the query, sorted by ID.
func (c *Client) Jobs(ctx context.Context, q JobQuery) (JobList, error) {
	v := url.Values{}
	if q.State != "" {
		v.Set("state", q.State)
	}
	if q.Tenant != "" {
		v.Set("tenant", q.Tenant)
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Offset > 0 {
		v.Set("offset", strconv.Itoa(q.Offset))
	}
	path := "/v1/jobs"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var list JobList
	err := c.getJSON(ctx, path, &list)
	return list, err
}

// Shards returns the per-shard status table — federated across members
// when the base URL is a gateway.
func (c *Client) Shards(ctx context.Context) ([]dollymp.ShardStatus, error) {
	var sr struct {
		Shards []dollymp.ShardStatus `json:"shards"`
	}
	err := c.getJSON(ctx, "/v1/shards", &sr)
	return sr.Shards, err
}

// Cluster returns the aggregated cluster/queue snapshot.
func (c *Client) Cluster(ctx context.Context) (dollymp.ClusterSnapshot, error) {
	var snap dollymp.ClusterSnapshot
	err := c.getJSON(ctx, "/v1/cluster", &snap)
	return snap, err
}

// Admission returns the edge-admission view: active policy and
// decision accounting, federated across every decision point.
func (c *Client) Admission(ctx context.Context) (dollymp.AdmissionStatus, error) {
	var st dollymp.AdmissionStatus
	err := c.getJSON(ctx, "/v1/admission", &st)
	return st, err
}

// Ready reports whether the deployment is fully serving: nil on a 200
// /readyz, an *Error with the envelope's code otherwise.
func (c *Client) Ready(ctx context.Context) error {
	resp, err := c.get(ctx, c.base+"/readyz")
	if err != nil {
		return err
	}
	out, err := readBody(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp, out)
	}
	return nil
}

// --- plumbing ---

func (c *Client) get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.hc.Do(req)
}

func (c *Client) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.hc.Do(req)
}

func readBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// getJSON GETs base+path and decodes a 200 into out; any other status
// becomes an *Error.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.get(ctx, c.base+path)
	if err != nil {
		return err
	}
	body, err := readBody(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into an *Error, preferring the
// envelope's precise retry_after_ms over the whole-second Retry-After
// header, and keeping the raw body when the response was not
// envelope-shaped.
func decodeError(resp *http.Response, body []byte) *Error {
	e := &Error{Status: resp.StatusCode}
	var er service.ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Error.Code != "" {
		e.Code = er.Error.Code
		e.Message = er.Error.Message
		e.Reason = er.Error.Reason
		e.Accepted = er.IDs
		e.Rejected = er.Rejected
		if er.Error.RetryAfterMS > 0 {
			e.RetryAfter = time.Duration(er.Error.RetryAfterMS) * time.Millisecond
		}
	} else {
		e.Message = string(bytes.TrimSpace(body))
	}
	if e.RetryAfter == 0 {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.ParseInt(ra, 10, 64); err == nil && secs > 0 {
				e.RetryAfter = time.Duration(secs) * time.Second
			}
		}
	}
	return e
}
