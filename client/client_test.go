package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dollymp"
	"dollymp/internal/resources"
	"dollymp/internal/service"
	"dollymp/internal/trace"
	"dollymp/internal/workload"
)

// testJob is a small two-task job the drain finishes in a few virtual
// slots; tenant labels drive the filter and admission tests.
func testJob(tenant string) *dollymp.Job {
	return &dollymp.Job{
		Name: "t", App: "test", Tenant: tenant,
		Phases: []workload.Phase{{
			Name: "p", Tasks: 2, Demand: resources.Cores(1, 1),
			MeanDuration: 2, SDDuration: 0,
		}},
	}
}

// newTestDeployment boots a started 2-shard router behind the real
// HTTP handler.
func newTestDeployment(t *testing.T) (*dollymp.Router, *httptest.Server) {
	t.Helper()
	r, err := dollymp.NewRouter(dollymp.RouterConfig{
		Fleet:  dollymp.LargeFleet(8, 1),
		Shards: 2,
		NewScheduler: func(int) (dollymp.Scheduler, error) {
			return dollymp.NewScheduler(dollymp.KindRandom)
		},
		Seed: 1, Deterministic: true, QueueCap: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	srv := httptest.NewServer(dollymp.NewAPIHandler(r))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = r.Stop(ctx)
	})
	return r, srv
}

// TestClientEndToEnd drives the whole SDK surface against a real
// sharded router: batch and single submission, completion waiting with
// counter cross-checks, lifecycle reads, the tenant filter, topology,
// the admission view, readiness, and the error-surface probe.
func TestClientEndToEnd(t *testing.T) {
	_, srv := newTestDeployment(t)
	c := New(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	batch := []*dollymp.Job{testJob("acme"), testJob("acme"), testJob("acme")}
	ids, err := c.SubmitBatch(ctx, batch)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if len(ids) != 3 {
		t.Fatalf("SubmitBatch returned %d ids, want 3", len(ids))
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(ctx, testJob("globex")); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}

	st, err := c.WaitDrained(ctx, WaitConfig{Jobs: 5})
	if err != nil {
		t.Fatalf("WaitDrained: %v", err)
	}
	if st.Completed < 5 || st.Submitted < 5 {
		t.Fatalf("WaitDrained stats = %+v, want >= 5 completed and submitted", st)
	}

	info, err := c.Job(ctx, ids[0])
	if err != nil {
		t.Fatalf("Job(%d): %v", ids[0], err)
	}
	if info.ID != ids[0] || info.Tenant != "acme" {
		t.Errorf("Job(%d) = %+v, want id %d tenant acme", ids[0], info, ids[0])
	}
	if _, err := c.Job(ctx, 999999); err == nil {
		t.Error("Job(999999): want not_found error")
	} else {
		var apiErr *Error
		if !errors.As(err, &apiErr) || apiErr.Code != CodeNotFound {
			t.Errorf("Job(999999) error = %v, want *Error with code not_found", err)
		}
	}

	list, err := c.Jobs(ctx, JobQuery{Tenant: "acme"})
	if err != nil {
		t.Fatalf("Jobs(tenant=acme): %v", err)
	}
	if list.Total != 3 {
		t.Errorf("tenant filter total = %d, want 3", list.Total)
	}
	for _, j := range list.Jobs {
		if j.Tenant != "acme" {
			t.Errorf("tenant filter leaked job %d with tenant %q", j.ID, j.Tenant)
		}
	}
	one, err := c.Jobs(ctx, JobQuery{Limit: 1})
	if err != nil || len(one.Jobs) != 1 || one.Total != 5 {
		t.Errorf("Jobs(limit=1) = %d jobs total %d (err %v), want 1 of 5", len(one.Jobs), one.Total, err)
	}

	shards, err := c.Shards(ctx)
	if err != nil || len(shards) != 2 {
		t.Fatalf("Shards = %d entries (err %v), want 2", len(shards), err)
	}
	snap, err := c.Cluster(ctx)
	if err != nil || snap.Jobs.Submitted != 5 {
		t.Errorf("Cluster: submitted %d (err %v), want 5", snap.Jobs.Submitted, err)
	}
	adm, err := c.Admission(ctx)
	if err != nil || adm.Policy != "none" {
		t.Errorf("Admission = %+v (err %v), want policy none", adm, err)
	}
	if err := c.Ready(ctx); err != nil {
		t.Errorf("Ready: %v", err)
	}
	if fv, err := c.Federation(ctx); err != nil || fv != nil {
		t.Errorf("Federation on plain daemon = %v, %v; want nil, nil", fv, err)
	}

	rep, err := c.Probe(ctx, 2)
	if err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if rep.Shards != 2 || rep.AdmissionPolicy != "none" || rep.EnvelopeChecks < 7 {
		t.Errorf("Probe report = %+v, want 2 shards, policy none, >= 7 envelope checks", rep)
	}
	if c.Retries() != 0 {
		t.Errorf("Retries = %d on an uncontended run, want 0", c.Retries())
	}
}

// envelope429 renders a retryable rejection the way the daemon does.
func envelope429(w http.ResponseWriter, code, reason string, ms int64, ids []workload.JobID, rejected int) {
	service.SetRetryAfter(w, time.Duration(ms)*time.Millisecond)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	_ = json.NewEncoder(w).Encode(service.ErrorResponse{
		Error:    service.APIError{Code: code, Message: "nope", Reason: reason, RetryAfterMS: ms},
		IDs:      ids,
		Rejected: rejected,
	})
}

func accept(w http.ResponseWriter, ids ...workload.JobID) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string][]workload.JobID{"ids": ids})
}

// TestSubmitBatchPartialAcceptance: a 429 mid-trace resubmits only the
// rejected tail, and the final ID list covers the whole batch in order.
func TestSubmitBatchPartialAcceptance(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		jobs, err := trace.DecodeSubmission(body)
		if err != nil {
			t.Errorf("server got undecodable submission: %v", err)
		}
		switch calls.Add(1) {
		case 1:
			if len(jobs) != 4 {
				t.Errorf("first POST carried %d jobs, want 4", len(jobs))
			}
			envelope429(w, service.CodeQueueFull, "", 1, []workload.JobID{1, 2}, 2)
		default:
			if len(jobs) != 2 {
				t.Errorf("retry POST carried %d jobs, want only the rejected tail of 2", len(jobs))
			}
			accept(w, 3, 4)
		}
	}))
	defer srv.Close()

	c := New(srv.URL, WithGatewayOnly())
	jobs := []*dollymp.Job{testJob("a"), testJob("a"), testJob("a"), testJob("a")}
	ids, err := c.SubmitBatch(context.Background(), jobs)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	want := []dollymp.JobID{1, 2, 3, 4}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if c.Retries() != 1 {
		t.Errorf("Retries = %d, want 1", c.Retries())
	}
}

// TestSubmitRetryClassification: admission_denied and bare 429s retry;
// invalid_argument is fatal on the first answer.
func TestSubmitRetryClassification(t *testing.T) {
	t.Run("admission_denied", func(t *testing.T) {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) == 1 {
				envelope429(w, service.CodeAdmissionDenied, "rate_limited", 2, nil, 1)
				return
			}
			accept(w, 1)
		}))
		defer srv.Close()
		c := New(srv.URL, WithGatewayOnly())
		if _, err := c.Submit(context.Background(), testJob("a")); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if calls.Load() != 2 || c.Retries() != 1 {
			t.Errorf("calls %d retries %d, want 2 and 1", calls.Load(), c.Retries())
		}
	})
	t.Run("bare_429", func(t *testing.T) {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) == 1 {
				http.Error(w, "slow down", http.StatusTooManyRequests)
				return
			}
			accept(w, 1)
		}))
		defer srv.Close()
		c := New(srv.URL, WithGatewayOnly())
		if _, err := c.Submit(context.Background(), testJob("a")); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if calls.Load() != 2 {
			t.Errorf("calls = %d, want 2 (one retry)", calls.Load())
		}
	})
	t.Run("fatal_code", func(t *testing.T) {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			service.WriteError(w, http.StatusBadRequest, service.CodeInvalidArgument, "bad job")
		}))
		defer srv.Close()
		c := New(srv.URL, WithGatewayOnly())
		_, err := c.Submit(context.Background(), testJob("a"))
		var apiErr *Error
		if !errors.As(err, &apiErr) || apiErr.Code != CodeInvalidArgument || apiErr.Retryable() {
			t.Fatalf("err = %v, want non-retryable *Error invalid_argument", err)
		}
		if calls.Load() != 1 {
			t.Errorf("calls = %d, want 1 (no retry on fatal code)", calls.Load())
		}
	})
	t.Run("ctx_expiry_bounds_retries", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			envelope429(w, service.CodeQueueFull, "", 5, nil, 1)
		}))
		defer srv.Close()
		c := New(srv.URL, WithGatewayOnly())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		_, err := c.Submit(ctx, testJob("a"))
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want deadline exceeded", err)
		}
	})
}

// fakeFederation builds a stub gateway over two recording member
// stubs: m0 owns residue 0 (queue depth 5), m1 owns residue 1 (empty).
func fakeFederation(t *testing.T) (gw *httptest.Server, gwHits, m0Hits, m1Hits *atomic.Int64, closeAll func()) {
	t.Helper()
	gwHits, m0Hits, m1Hits = new(atomic.Int64), new(atomic.Int64), new(atomic.Int64)
	member := func(hits *atomic.Int64) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
				hits.Add(1)
				accept(w, 1)
				return
			}
			http.NotFound(w, r)
		}))
	}
	m0 := member(m0Hits)
	m1 := member(m1Hits)
	gw = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/federation":
			fmt.Fprintf(w, `{"shards": 2, "members": [
				{"name": "m0", "url": %q, "residues": [0], "alive": true},
				{"name": "m1", "url": %q, "residues": [1], "alive": true}]}`, m0.URL, m1.URL)
		case r.URL.Path == "/v1/shards":
			fmt.Fprint(w, `{"shards": [
				{"shard": 0, "queue_depth": 5}, {"shard": 1, "queue_depth": 0}]}`)
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			gwHits.Add(1)
			accept(w, 1)
		default:
			http.NotFound(w, r)
		}
	}))
	return gw, gwHits, m0Hits, m1Hits, func() { gw.Close(); m0.Close(); m1.Close() }
}

// TestDirectRoutingToLightestMember: against a gateway, submissions go
// straight to the member whose residues carry the least queue depth.
func TestDirectRoutingToLightestMember(t *testing.T) {
	gw, gwHits, m0Hits, m1Hits, closeAll := fakeFederation(t)
	defer closeAll()
	c := New(gw.URL)
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(context.Background(), testJob("a")); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if m1Hits.Load() != 3 {
		t.Errorf("lightest member got %d submits, want 3", m1Hits.Load())
	}
	if gwHits.Load() != 0 || m0Hits.Load() != 0 {
		t.Errorf("gateway/m0 got %d/%d submits, want 0/0", gwHits.Load(), m0Hits.Load())
	}
}

// TestDirectRoutingFallsBackToGateway: a member that dies inside the
// topology TTL costs one transport error, then the batch goes through
// the gateway, which routes around the death itself.
func TestDirectRoutingFallsBackToGateway(t *testing.T) {
	gwHits := new(atomic.Int64)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // reachable URL, refused connections
	gw := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/federation":
			fmt.Fprintf(w, `{"shards": 1, "members": [
				{"name": "m0", "url": %q, "residues": [0], "alive": true}]}`, dead.URL)
		case r.URL.Path == "/v1/shards":
			fmt.Fprint(w, `{"shards": [{"shard": 0, "queue_depth": 0}]}`)
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			gwHits.Add(1)
			accept(w, 1)
		default:
			http.NotFound(w, r)
		}
	}))
	defer gw.Close()

	c := New(gw.URL)
	if _, err := c.Submit(context.Background(), testJob("a")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if gwHits.Load() != 1 {
		t.Errorf("gateway got %d submits after member fallback, want 1", gwHits.Load())
	}
	c.mu.Lock()
	invalidated := c.topo == nil
	c.mu.Unlock()
	if !invalidated {
		t.Error("topology cache not invalidated after member transport failure")
	}
}

// TestGatewayOnlySkipsDiscovery: WithGatewayOnly never touches
// /v1/federation and posts to the base URL.
func TestGatewayOnlySkipsDiscovery(t *testing.T) {
	var fedHits, gwHits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/federation":
			fedHits.Add(1)
			http.NotFound(w, r)
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			gwHits.Add(1)
			accept(w, 1)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	c := New(srv.URL, WithGatewayOnly())
	if _, err := c.Submit(context.Background(), testJob("a")); err != nil {
		t.Fatal(err)
	}
	if fedHits.Load() != 0 || gwHits.Load() != 1 {
		t.Errorf("federation/base hits = %d/%d, want 0/1", fedHits.Load(), gwHits.Load())
	}
}

// TestErrorRetryAfterPreference: the envelope's retry_after_ms beats
// the whole-second Retry-After header; the header is the fallback.
func TestErrorRetryAfterPreference(t *testing.T) {
	resp := &http.Response{StatusCode: 429, Header: http.Header{"Retry-After": []string{"3"}}}
	e := decodeError(resp, []byte(`{"error":{"code":"queue_full","message":"full","retry_after_ms":25}}`))
	if e.RetryAfter != 25*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 25ms from the envelope", e.RetryAfter)
	}
	e = decodeError(resp, []byte(`{"error":{"code":"queue_full","message":"full"}}`))
	if e.RetryAfter != 3*time.Second {
		t.Errorf("RetryAfter = %v, want 3s from the header", e.RetryAfter)
	}
	if !e.Retryable() {
		t.Error("queue_full must be retryable")
	}
}
