package dollymp

// Edge admission, re-exported through the facade: a pluggable policy
// that sits in front of the admission queue and decides, per job,
// whether the deployment should take the work at all right now.
// Backpressure (queue_full) says "the queue is full"; an admission
// denial says "the queue may have room but you are over your share" —
// rate limits and per-tenant weighted fairness live here.
//
//	pol := dollymp.NewWeightedFair(dollymp.WeightedFairConfig{
//	    Weights: map[string]float64{"batch": 1, "serving": 4},
//	})
//	router, _ := dollymp.NewRouter(dollymp.RouterConfig{
//	    Fleet: fleet, Shards: 4, NewScheduler: newSched,
//	    Admission: pol,
//	})
//
// A denied submission surfaces as *AdmissionError (errors.Is
// ErrAdmissionDenied) and, over HTTP, as a 429 with code
// "admission_denied", a machine-readable reason, and a Retry-After
// hint. GET /v1/admission reports the policy and its per-tenant
// decision accounting.

import (
	"dollymp/internal/admission"
	"dollymp/internal/service"
)

type (
	// AdmissionPolicy decides, per submitted job, admit or deny.
	AdmissionPolicy = admission.Policy
	// AdmissionSnapshot is the queue-state view a policy decides on.
	AdmissionSnapshot = admission.Snapshot
	// AdmissionDecision is one policy verdict.
	AdmissionDecision = admission.Decision
	// AdmissionStats is a policy's decision accounting.
	AdmissionStats = admission.Stats
	// AdmissionTenantStats is one tenant's slice of AdmissionStats.
	AdmissionTenantStats = admission.TenantStats
	// AdmissionStatus is the GET /v1/admission response.
	AdmissionStatus = service.AdmissionStatus
	// AdmissionError is the denial error carrying reason and retry hint.
	AdmissionError = service.AdmissionError

	// TokenBucket is the global-rate admission policy.
	TokenBucket = admission.TokenBucket
	// TokenBucketConfig configures a TokenBucket.
	TokenBucketConfig = admission.TokenBucketConfig
	// WeightedFair is the per-tenant weighted-fair admission policy.
	WeightedFair = admission.WeightedFair
	// WeightedFairConfig configures a WeightedFair.
	WeightedFairConfig = admission.WeightedFairConfig
)

// Admission denial reasons (AdmissionDecision.Reason).
const (
	AdmissionRateLimited = admission.ReasonRateLimited
	AdmissionOverWeight  = admission.ReasonOverWeight
)

// ErrAdmissionDenied: the edge admission policy refused the job before
// it reached the queue (HTTP 429, code "admission_denied").
var ErrAdmissionDenied = service.ErrAdmissionDenied

// NewTokenBucket builds the global token-bucket policy.
var NewTokenBucket = admission.NewTokenBucket

// NewWeightedFair builds the per-tenant weighted-fair policy.
var NewWeightedFair = admission.NewWeightedFair

// ParseWeights parses "tenant=weight,..." (dollympd -admission-weights);
// FormatWeights renders the inverse, sorted by tenant.
var (
	ParseWeights  = admission.ParseWeights
	FormatWeights = admission.FormatWeights
)
