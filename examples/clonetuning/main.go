// Clone tuning (§6.3.1): sweep the per-task clone cap (DollyMP⁰..³) and
// the cloning budget δ over one trace-driven workload, showing the
// paper's two findings — the second clone is worth far more than the
// third, and a small budget already captures most of the benefit.
package main

import (
	"fmt"
	"log"

	"dollymp"
)

func main() {
	fleet := func() *dollymp.Cluster { return dollymp.LargeFleet(150, 5) }
	jobs := dollymp.GoogleWorkload(150, 3, 5)

	fmt.Println("Clone cap sweep (δ = 0.3):")
	fmt.Printf("  %-9s %14s %16s %13s\n", "variant", "mean flowtime", "resource usage", "tasks cloned")
	var base float64
	for k := 0; k <= 3; k++ {
		sched, err := dollymp.NewDollyMP(dollymp.WithClones(k))
		if err != nil {
			log.Fatal(err)
		}
		res, err := dollymp.Simulate(dollymp.SimConfig{
			Cluster: fleet(), Jobs: jobs, Scheduler: sched, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		if k == 0 {
			base = res.MeanFlowtime()
		}
		fmt.Printf("  %-9s %9.1f (%3.0f%%) %16d %12.1f%%\n",
			sched.Name(), res.MeanFlowtime(), 100*res.MeanFlowtime()/base,
			res.TotalUsage.CPUMilliSlots/1000, 100*res.ClonedTaskFraction())
	}

	fmt.Println("\nCloning budget sweep (two clones):")
	fmt.Printf("  %-6s %14s %13s\n", "δ", "mean flowtime", "tasks cloned")
	for _, delta := range []float64{0, 0.05, 0.1, 0.3, 0.6, 1.0} {
		sched, err := dollymp.NewDollyMP(dollymp.WithClones(2), dollymp.WithCloneBudget(delta))
		if err != nil {
			log.Fatal(err)
		}
		res, err := dollymp.Simulate(dollymp.SimConfig{
			Cluster: fleet(), Jobs: jobs, Scheduler: sched, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6.2f %14.1f %12.1f%%\n",
			delta, res.MeanFlowtime(), 100*res.ClonedTaskFraction())
	}
}
