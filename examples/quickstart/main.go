// Quickstart: build the paper's 30-node testbed, submit a small mixed
// workload, schedule it with DollyMP², and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"dollymp"
)

func main() {
	// The §6.1 testbed: 30 heterogeneous nodes, 328 cores.
	fleet := dollymp.Testbed30()

	// 40 jobs — half WordCount, half PageRank — arriving 10 slots
	// (50 s) apart.
	jobs := dollymp.MixedWorkload(40, 10, 1)

	// DollyMP with the paper's defaults: two clones per task, r = 1.5,
	// cloning budget δ = 0.3.
	sched, err := dollymp.NewScheduler(dollymp.KindDollyMP2)
	if err != nil {
		log.Fatal(err)
	}

	res, err := dollymp.Simulate(dollymp.SimConfig{
		Cluster:   fleet,
		Jobs:      jobs,
		Scheduler: sched,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheduler:      %s\n", res.Scheduler)
	fmt.Printf("jobs completed: %d\n", len(res.Jobs))
	fmt.Printf("mean flowtime:  %.1f slots (%.0f s at 5 s/slot)\n",
		res.MeanFlowtime(), res.MeanFlowtime()*5)
	fmt.Printf("makespan:       %d slots\n", res.Makespan)
	fmt.Printf("tasks cloned:   %.1f%%\n", 100*res.ClonedTaskFraction())

	// Per-job detail for the first few jobs.
	fmt.Println("\nfirst jobs:")
	for _, j := range res.Jobs[:5] {
		fmt.Printf("  %-14s arrived %4d  finished %4d  flowtime %4d  copies %d/%d tasks\n",
			j.Name, j.Arrival, j.Finish, j.Flowtime, j.CopiesLaunched, j.TotalTasks)
	}
}
