// Fault injection: run the same workload on a fleet where servers slow
// down and fail mid-run, comparing DollyMP variants. Two effects show:
// clones double as fault tolerance (a task with a surviving copy ignores
// a failure), and the learned straggler-avoidance extension steers work
// away from degraded machines.
package main

import (
	"fmt"
	"log"

	"dollymp"
)

func main() {
	jobs := dollymp.GoogleWorkload(80, 4, 21)

	// Minute 2: a quarter of the fleet degrades to 30% speed.
	// Minute 5: one server dies; minute 10: it comes back.
	events := []dollymp.FleetEvent{
		{At: 24, Server: 0, Kind: dollymp.EventSlowdown, Factor: 0.3},
		{At: 24, Server: 5, Kind: dollymp.EventSlowdown, Factor: 0.3},
		{At: 24, Server: 10, Kind: dollymp.EventSlowdown, Factor: 0.3},
		{At: 24, Server: 15, Kind: dollymp.EventSlowdown, Factor: 0.3},
		{At: 60, Server: 3, Kind: dollymp.EventFail},
		{At: 120, Server: 3, Kind: dollymp.EventRestore},
	}

	type variant struct {
		name  string
		sched dollymp.Scheduler
	}
	variants := []variant{}
	noClone, err := dollymp.NewDollyMP(dollymp.WithClones(0))
	if err != nil {
		log.Fatal(err)
	}
	variants = append(variants, variant{"DollyMP0 (no clones)", noClone})
	twoClones, err := dollymp.NewDollyMP(dollymp.WithClones(2))
	if err != nil {
		log.Fatal(err)
	}
	variants = append(variants, variant{"DollyMP2", twoClones})
	learned, err := dollymp.NewDollyMP(dollymp.WithClones(2), dollymp.WithStragglerAvoidance(true))
	if err != nil {
		log.Fatal(err)
	}
	variants = append(variants, variant{"DollyMP2 + learning", learned})

	fmt.Printf("%-22s %14s %14s %12s\n", "variant", "mean flowtime", "copies lost", "tasks cloned")
	for _, v := range variants {
		res, err := dollymp.Simulate(dollymp.SimConfig{
			Cluster:   dollymp.LargeFleet(20, 9),
			Jobs:      jobs,
			Scheduler: v.sched,
			Seed:      9,
			Events:    events,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %14.1f %14d %11.1f%%\n",
			v.name, res.MeanFlowtime(), res.CopiesLostToFailures,
			100*res.ClonedTaskFraction())
	}
	fmt.Println("\nClones absorb the failure (tasks with surviving copies never")
	fmt.Println("restart) and learned ordering avoids the slowed servers.")
}
