// Scenario files: define one reproducible experiment — fleet, workload,
// fault schedule — write it to disk, and run every scheduler over the
// identical conditions. This is how to share a benchmark setup with
// someone else: they replay the JSON and get bit-identical results.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dollymp"
)

func main() {
	sc := &dollymp.Scenario{
		Version: 1,
		Name:    "degraded-fleet-shootout",
		Fleet:   dollymp.FleetSpecs(dollymp.LargeFleet(24, 11)),
		Jobs:    dollymp.GoogleWorkload(60, 4, 11),
		Events: []dollymp.FleetEvent{
			{At: 20, Server: 2, Kind: dollymp.EventSlowdown, Factor: 0.3},
			{At: 20, Server: 9, Kind: dollymp.EventSlowdown, Factor: 0.3},
			{At: 45, Server: 5, Kind: dollymp.EventFail},
			{At: 120, Server: 5, Kind: dollymp.EventRestore},
		},
		Seed: 11,
	}

	// Persist the scenario; `dollymp-sim -scenario <file> -scheduler X`
	// replays it from the shell.
	path := filepath.Join(os.TempDir(), "dollymp-scenario.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := sc.Write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("scenario written to", path)
	fmt.Println()

	fmt.Printf("%-14s %14s %14s %12s\n", "scheduler", "mean flowtime", "makespan", "copies lost")
	for _, kind := range []dollymp.Kind{
		dollymp.KindCapacity, dollymp.KindTetris, dollymp.KindCarbyne,
		dollymp.KindDollyMP2, dollymp.KindYARN,
	} {
		policy, err := dollymp.NewScheduler(kind)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sc.Run(policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %14.1f %14d %12d\n",
			kind, res.MeanFlowtime(), res.Makespan, res.CopiesLostToFailures)
	}
}
