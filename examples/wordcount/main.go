// WordCount walk-through (§6.2.1's lightly-loaded regime): the same
// 100-job mixed workload under every built-in scheduler, reporting
// total flowtime, tail running time and cloning overhead — the
// comparison behind Fig. 4.
package main

import (
	"fmt"
	"log"

	"dollymp"
)

func main() {
	jobs := dollymp.MixedWorkload(100, 40, 7) // ~200 s inter-arrival

	fmt.Printf("%-10s %14s %14s %12s %12s\n",
		"scheduler", "total flowtime", "p95 running", "tasks cloned", "utilization")
	for _, kind := range dollymp.Kinds() {
		sched, err := dollymp.NewScheduler(kind)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dollymp.Simulate(dollymp.SimConfig{
			Cluster:   dollymp.Testbed30(),
			Jobs:      jobs,
			Scheduler: sched,
			Seed:      7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14d %14.0f %11.1f%% %11.1f%%\n",
			kind,
			res.TotalFlowtime(),
			res.RunningTimeECDF().Quantile(0.95),
			100*res.ClonedTaskFraction(),
			100*res.AvgUtilization)
	}
	fmt.Println("\nLower flowtime is better; DollyMP's clones trade a little")
	fmt.Println("extra resource usage for a much shorter straggler tail.")
}
