// Custom scheduler: the library's extension point. Any type with
//
//	Name() string
//	Schedule(ctx dollymp.SchedulerContext) []dollymp.Placement
//
// can drive the simulator. This example implements "LJF" — longest job
// first, a deliberately bad policy — and shows it losing to DollyMP² on
// the same workload, then certifies both runs against the paper's model
// constraints.
package main

import (
	"fmt"
	"log"
	"sort"

	"dollymp"
)

// ljf schedules the job with the LONGEST remaining critical path first.
type ljf struct{}

func (ljf) Name() string { return "ljf" }

func (ljf) Schedule(ctx dollymp.SchedulerContext) []dollymp.Placement {
	jobs := append([]*dollymp.JobState(nil), ctx.Jobs()...)
	sort.SliceStable(jobs, func(i, j int) bool {
		a := jobs[i].UpdatedProcessingTime(0)
		b := jobs[j].UpdatedProcessingTime(0)
		if a != b {
			return a > b // longest first: the anti-SRPT
		}
		return jobs[i].Job.ID < jobs[j].Job.ID
	})

	ft := dollymp.NewFitTracker(ctx.Cluster())
	var out []dollymp.Placement
	for _, js := range jobs {
		cur := dollymp.NewJobCursor(js)
		for {
			pt, ok := cur.Peek()
			if !ok {
				break
			}
			srv, ok := ft.BestFit(pt.Demand)
			if !ok {
				break
			}
			ft.Place(srv, pt.Demand)
			out = append(out, dollymp.Placement{Ref: pt.Ref, Server: srv})
			cur.Advance()
		}
	}
	return out
}

func main() {
	jobs := dollymp.MixedWorkload(40, 4, 17)

	run := func(s dollymp.Scheduler) *dollymp.Result {
		res, err := dollymp.Simulate(dollymp.SimConfig{
			Cluster:     dollymp.Testbed30(),
			Jobs:        jobs,
			Scheduler:   s,
			Seed:        17,
			RecordTrace: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Certify the schedule against the paper's model constraints
		// (Eqs. 5, 7, 6/8) — custom policies get the same checking.
		if err := dollymp.VerifyTrace(res, dollymp.Testbed30(), jobs); err != nil {
			log.Fatalf("%s produced an invalid schedule: %v", s.Name(), err)
		}
		return res
	}

	mine := run(ljf{})
	ref, err := dollymp.NewScheduler(dollymp.KindDollyMP2)
	if err != nil {
		log.Fatal(err)
	}
	official := run(ref)

	fmt.Printf("%-10s mean flowtime %8.1f slots (certified ✓)\n", "ljf", mine.MeanFlowtime())
	fmt.Printf("%-10s mean flowtime %8.1f slots (certified ✓)\n", official.Scheduler, official.MeanFlowtime())
	fmt.Printf("\nDollyMP² is %.1f× better — as it should be against longest-job-first.\n",
		mine.MeanFlowtime()/official.MeanFlowtime())
}
