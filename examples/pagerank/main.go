// PageRank under heavy load (§6.2.2): 200 multi-phase DAG jobs with
// mixed input sizes arriving every 4 slots (~20 s), comparing Capacity,
// Tetris, Carbyne and DollyMP² — the regime of Figs. 5–7 where job
// ordering dominates and most jobs queue before running.
package main

import (
	"fmt"
	"log"

	"dollymp"
)

func main() {
	// Build the workload once so every scheduler sees identical jobs:
	// alternating 10 GB and 1 GB PageRank DAGs (init → 3 iterations →
	// finalize).
	jobs := make([]*dollymp.Job, 200)
	for i := range jobs {
		size := 10.0
		if i%2 == 1 {
			size = 1.0
		}
		jobs[i] = dollymp.PageRankJob(int64(i), int64(i*4), size, uint64(1000+i))
	}

	kinds := []dollymp.Kind{
		dollymp.KindCapacity, dollymp.KindTetris,
		dollymp.KindCarbyne, dollymp.KindDollyMP2,
	}
	fmt.Printf("%-10s %14s %14s %14s\n", "scheduler", "mean flowtime", "p50 flowtime", "p95 flowtime")
	base := -1.0
	for _, kind := range kinds {
		sched, err := dollymp.NewScheduler(kind)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dollymp.Simulate(dollymp.SimConfig{
			Cluster:   dollymp.Testbed30(),
			Jobs:      jobs,
			Scheduler: sched,
			Seed:      11,
		})
		if err != nil {
			log.Fatal(err)
		}
		ecdf := res.FlowtimeECDF()
		fmt.Printf("%-10s %14.1f %14.0f %14.0f\n",
			kind, res.MeanFlowtime(), ecdf.Quantile(0.5), ecdf.Quantile(0.95))
		if kind == dollymp.KindCapacity {
			base = res.MeanFlowtime()
		} else if kind == dollymp.KindDollyMP2 && base > 0 {
			fmt.Printf("\nDollyMP² mean flowtime is %.0f%% below the Capacity Scheduler.\n",
				100*(1-res.MeanFlowtime()/base))
		}
	}
}
