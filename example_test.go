package dollymp_test

import (
	"fmt"

	"dollymp"
)

// The quickstart: schedule a small deterministic workload with DollyMP²
// on the paper's 30-node testbed.
func ExampleSimulate() {
	fleet := dollymp.Testbed30()
	jobs := []*dollymp.Job{
		dollymp.WordCountJob(0, 0, 1, 7),
	}
	sched, err := dollymp.NewScheduler(dollymp.KindDollyMP2)
	if err != nil {
		panic(err)
	}
	res, err := dollymp.Simulate(dollymp.SimConfig{
		Cluster:       fleet,
		Jobs:          jobs,
		Scheduler:     sched,
		Seed:          1,
		Deterministic: true, // fixed durations make the output stable
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("jobs completed:", len(res.Jobs))
	fmt.Println("scheduler:", res.Scheduler)
	// Output:
	// jobs completed: 1
	// scheduler: dollymp2
}

// Configure DollyMP away from the paper's defaults: one clone per task,
// a tight δ cloning budget, and learned straggler avoidance.
func ExampleNewDollyMP() {
	s, err := dollymp.NewDollyMP(
		dollymp.WithClones(1),
		dollymp.WithCloneBudget(0.1),
		dollymp.WithStragglerAvoidance(true),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Name(), "max clones:", s.MaxClones())
	// Output:
	// dollymp1 max clones: 1
}

// Build a custom heterogeneous fleet instead of the built-in testbed.
func ExampleNewCluster() {
	fleet, err := dollymp.NewCluster([]dollymp.ServerSpec{
		{Name: "big", Capacity: dollymp.Cores(32, 64), Speed: 1.5, Rack: 0},
		{Name: "small", Capacity: dollymp.Cores(8, 16), Speed: 1.0, Rack: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("servers:", fleet.Len())
	fmt.Println("total:", fleet.Total())
	// Output:
	// servers: 2
	// total: 40.00c/80.0GiB
}

// Inject fleet perturbations: a mid-run server failure that a cloned
// task survives.
func ExampleFleetEvent() {
	fleet, err := dollymp.NewCluster([]dollymp.ServerSpec{
		{Name: "a", Capacity: dollymp.Cores(4, 8), Speed: 1},
		{Name: "b", Capacity: dollymp.Cores(4, 8), Speed: 1},
	})
	if err != nil {
		panic(err)
	}
	sched, err := dollymp.NewScheduler(dollymp.KindDollyMP2)
	if err != nil {
		panic(err)
	}
	res, err := dollymp.Simulate(dollymp.SimConfig{
		Cluster:       fleet,
		Jobs:          []*dollymp.Job{dollymp.WordCountJob(0, 0, 0.5, 3)},
		Scheduler:     sched,
		Seed:          3,
		Deterministic: true,
		Events: []dollymp.FleetEvent{
			{At: 2, Server: 0, Kind: dollymp.EventFail},
			{At: 50, Server: 0, Kind: dollymp.EventRestore},
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("jobs completed:", len(res.Jobs))
	// Output:
	// jobs completed: 1
}
